package core

// The chaos/recovery driver: run a distributed Wilson CG solve under a
// deterministic fault plan and survive it end to end — inject, detect,
// isolate, restore, converge (DESIGN.md §12, experiment E16).
//
// Each attempt is one hosted job: boot a machine through the full
// qdaemon protocol, arm heartbeats and the watchdog, arm the fault
// plan, and launch the solve as a qdaemon application whose ranks
// periodically checkpoint their solution iterate to host storage over
// the NFS shim. When the watchdog detects a node death it isolates the
// owning daughterboard and aborts the job; the driver then plays the
// operator's part of §3.1 — the failed daughterboard leaves the
// partition, the qdaemon re-forms the largest power-of-two partition
// from the survivors, and the job restarts there from the newest
// complete checkpoint. The recovered partition is simulated as its own
// machine (we model the partition the job runs on, not the idle
// remainder), with a fresh simulation clock: fault offsets and
// detection latencies are attempt-relative, and every one of them is
// folded into the outcome digest.
//
// Host storage (the FS map) is the one thing that survives an attempt:
// exactly the paper's recovery story, where weeks-long runs live and
// die by the configurations on the host RAID (§4).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/qmp"
	"qcdoc/internal/qos"
	"qcdoc/internal/solver"
	"qcdoc/internal/telemetry"
)

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	// Shape is the initial machine; Global the lattice.
	Shape  geom.Shape
	Global lattice.Shape4
	// Seed draws the gauge configuration and source; FaultSeed the
	// fault plan.
	Seed      uint64
	FaultSeed uint64

	Mass    float64
	Tol     float64
	MaxIter int
	// CheckpointEvery is the solver-state checkpoint interval in CG
	// iterations.
	CheckpointEvery int
	// MaxAttempts bounds restarts (a plan can kill more than one node).
	MaxAttempts int

	// Heartbeat is the node liveness tick period; Watchdog the host
	// detection policy.
	Heartbeat event.Time
	Watchdog  qdaemon.WatchdogConfig

	// Recovery parameterizes the escalation ladder the supervisor climbs
	// between attempts: checkpoint generations retained, chunk-read retry
	// policy, RAID read cost (see RecoveryConfig).
	Recovery RecoveryConfig

	// Spec describes the faults to draw from FaultSeed.
	Spec faultplan.Spec

	// Shards/Workers select sharded parallel simulation for each
	// attempt's machine (see machine.Config); the outcome digest is
	// invariant under Workers.
	Shards  int
	Workers int

	// Pool recycles engine storage and frame rings across attempts and
	// across runs (fleet substrate); nil disables pooling. Pooling never
	// changes the outcome digest.
	Pool *machine.Pool

	// Telemetry enables the full observability layer on every attempt's
	// machine and collects the merged histogram snapshots into the
	// outcome. The digest is invariant under this flag — that invariance
	// is the zero-perturbation gate (DESIGN.md §15).
	Telemetry bool

	// Log, when set, receives a human-readable narrative of the run.
	Log io.Writer
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Mass == 0 {
		c.Mass = 0.5
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 400
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100 * event.Microsecond
	}
	c.Recovery = c.Recovery.withDefaults()
	return c
}

// ChaosAttempt is the observable outcome of one hosted job attempt.
type ChaosAttempt struct {
	Nodes        int
	RestoredIter int
	Iterations   int
	Aborted      bool
	Converged    bool
	Failure      qdaemon.FailureRecord
	EndedAt      event.Time
}

func (a ChaosAttempt) String() string {
	if a.Aborted {
		return fmt.Sprintf("%d nodes, restored iter %d: aborted (%s) at %v",
			a.Nodes, a.RestoredIter, a.Failure, a.EndedAt)
	}
	return fmt.Sprintf("%d nodes, restored iter %d: %d iterations, converged=%v at %v",
		a.Nodes, a.RestoredIter, a.Iterations, a.Converged, a.EndedAt)
}

// ChaosOutcome reports a chaos run.
type ChaosOutcome struct {
	Attempts    []ChaosAttempt
	Converged   bool
	RelResidual float64
	// SolutionCRC fingerprints the gathered solution field.
	SolutionCRC uint32
	// PlanDigest fingerprints the fault schedule; Digest the entire
	// run, recovery-event timing included. Two runs with the same seeds
	// must agree on both bit for bit.
	PlanDigest uint64
	Digest     uint64
	// Rungs is every recovery-ladder action the supervisor climbed —
	// chunk retries, generation fallbacks, cold starts, repartitions,
	// rejected death reports, mid-recovery re-detections — each with its
	// sim-time stamp, all folded into Digest.
	Rungs []RungRecord
	// Hists, when ChaosConfig.Telemetry was set, carries the machine
	// latency distributions merged over every attempt. Deliberately NOT
	// folded into Digest: the digest must be identical with telemetry
	// on or off.
	Hists map[string]telemetry.HistogramSnapshot
}

// attemptLayout remembers how an attempt spread the lattice over its
// machine, so the host can reassemble that attempt's checkpoints later.
type attemptLayout struct {
	shape geom.Shape
	lay   Layout
}

// chunkName is the host-storage path of one rank's solver-state chunk.
func chunkName(attempt, iter, rank int) string {
	return fmt.Sprintf("ckpt/chaos/a%d/i%06d/r%d", attempt, iter, rank)
}

// RunChaosWilson runs a distributed Wilson CG solve under the fault
// plan drawn from cfg.FaultSeed, recovering from detected node deaths
// by repartition + checkpoint restore until the solve converges or
// MaxAttempts is exhausted.
func RunChaosWilson(cfg ChaosConfig) (*ChaosOutcome, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	gauge := lattice.NewGaugeField(cfg.Global)
	gauge.Randomize(cfg.Seed)
	b := lattice.NewFermionField(cfg.Global)
	b.Gaussian(cfg.Seed + 1)

	plan := faultplan.Generate(cfg.FaultSeed, cfg.Spec, cfg.Shape.Volume())
	out := &ChaosOutcome{PlanDigest: plan.Digest()}
	logf("%s", plan)

	// fs is the host RAID storage: the one artifact that survives an
	// attempt. Checkpoint chunks commit here all-or-nothing (the NFS
	// shim assembles a file only when every chunk arrived); the
	// supervisor owns it across attempts.
	fs := map[string][]byte{}
	sup := newSupervisor(cfg.Recovery, fs, cfg.Global, logf)
	nodes := cfg.Shape.Volume()
	var past []attemptLayout
	// Every exit path — success or typed ladder exhaustion — reports the
	// rungs climbed and a digest over them: failing runs must be exactly
	// as reproducible as converging ones.
	finish := func(err error) (*ChaosOutcome, error) {
		out.Rungs = sup.rungs
		out.Digest = out.computeDigest()
		return out, err
	}
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		shape := cfg.Shape
		if attempt > 0 {
			shape = machine.GuessShape(nodes)
		}
		lay, err := NewLayout(shape, cfg.Global)
		if err != nil {
			return finish(err)
		}
		logf("attempt %d: %d nodes %v", attempt, shape.Volume(), shape)

		att, err := runChaosAttempt(cfg, sup, attempt, shape, lay, plan, gauge, b, past, fs, logf)
		past = append(past, attemptLayout{shape: shape, lay: lay})
		if err != nil {
			return finish(err)
		}
		out.Attempts = append(out.Attempts, att.rec)
		out.Hists = telemetry.MergeHistogramMaps(out.Hists, att.hists)
		if att.rec.Aborted {
			nodes = att.healthyPow2
			sup.stats.Repartitions++
			sup.rung(attempt, RungRepartition, att.rec.Failure.Rank, nodes, att.rec.EndedAt)
			logf("attempt %d: %s", attempt, att.rec.Failure)
			if nodes < 1 {
				return finish(fmt.Errorf("%w after %s", ErrPartitionExhausted, att.rec.Failure))
			}
			continue
		}
		out.Converged = att.rec.Converged
		out.RelResidual = att.met.RelResidual
		out.SolutionCRC = checkpoint.FermionCRC(att.solution)
		break
	}
	if !out.Converged {
		return finish(fmt.Errorf("core: chaos run did not converge in %d attempts", len(out.Attempts)))
	}
	out.Rungs = sup.rungs
	out.Digest = out.computeDigest()
	logf("converged: residual %.2g, solution CRC %#x, digest %#x (%d ladder rungs)",
		out.RelResidual, out.SolutionCRC, out.Digest, len(out.Rungs))
	return out, nil
}

// chaosAttempt is the raw result of one attempt.
type chaosAttempt struct {
	rec         ChaosAttempt
	met         SolveMetrics
	solution    *lattice.FermionField
	healthyPow2 int
	hists       map[string]telemetry.HistogramSnapshot
}

func runChaosAttempt(cfg ChaosConfig, sup *supervisor, attempt int, shape geom.Shape, lay Layout,
	plan *faultplan.Plan, gauge *lattice.GaugeField, b *lattice.FermionField,
	past []attemptLayout, fs map[string][]byte, logf func(string, ...any)) (chaosAttempt, error) {

	res := chaosAttempt{}
	// rst carries the restore's product from the control process to the
	// node programs: the supervisor writes it (in sim time, before the
	// launch RPC) and each rank reads it after the launch crosses shards.
	rst := struct {
		x0   *lattice.FermionField
		iter int
	}{x0: lattice.NewFermionField(cfg.Global)}
	eng := cfg.Pool.NewEngine()
	mcfg := machine.DefaultConfig(shape)
	mcfg.Shards = cfg.Shards
	mcfg.Workers = cfg.Workers
	mcfg.Pool = cfg.Pool
	m := machine.Build(eng, mcfg)
	defer func() {
		eng.Shutdown()
		cfg.Pool.Reclaim(eng, m)
	}()
	if cfg.Telemetry {
		m.EnableTelemetry()
	}
	sup.beginAttempt(m.Reg)
	if err := m.TrainLinks(); err != nil {
		return res, err
	}
	d := qdaemon.New(eng, m)
	d.FS = fs

	dec := lay.Dec
	res.solution = lattice.NewFermionField(cfg.Global)
	errs := make([]error, shape.Volume())
	prog := fmt.Sprintf("chaos-wilson-a%d", attempt)
	d.LoadProgram(prog, func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(gauge, dec, gc)
			localB := ScatterFermion(b, dec, gc)
			dw := NewDistWilson(ctx, comm, dec, localG, cfg.Mass, fermion.Double)
			ss := DistSpace(ctx, comm, dec, fermion.WilsonKind, fermion.Double)
			sp := distSpinorSpace(ss)
			x := ScatterFermion(rst.x0, dec, gc) // warm restart from the restored iterate
			k := qos.FromCtx(ctx)
			ck := solver.Checkpoint[*lattice.FermionField]{
				Every: cfg.CheckpointEvery,
				Save: func(iter int, cur *lattice.FermionField) {
					// Observability envelope: one flow + span per chunk so a
					// checkpoint stream exports as a Chrome-trace flow, and
					// the write's sim time lands in the CkptWrite histogram.
					peng := ctx.P.Engine()
					flow := peng.NewFlow()
					prev := peng.SetFlow(flow)
					peng.MarkSpanBegin("ckpt-chunk")
					start := ctx.P.Now()
					var buf bytes.Buffer
					if err := checkpoint.WriteSolverState(&buf, cur, uint32(rst.iter+iter)); err != nil {
						panic(err) // bytes.Buffer writes cannot fail
					}
					k.WriteFile(ctx.P, chunkName(attempt, rst.iter+iter, rank), buf.Bytes())
					peng.SetFlow(flow)
					peng.MarkSpanEnd("ckpt-chunk")
					peng.SetFlow(prev)
					if ctr := ctx.N.Counters(); ctr != nil {
						ctr.CkptWrite.Record(uint64(ctx.P.Now() - start))
					}
				},
			}
			r, err := solver.CGNECheckpointed(sp, dw.Apply, dw.ApplyDag, x, localB, cfg.Tol, cfg.MaxIter, ck)
			errs[rank] = err
			GatherFermion(res.solution, dec, gc, x)
			if rank == 0 {
				res.met.Iterations = r.Iterations
				res.met.RelResidual = r.RelResidual
				res.rec.Converged = r.Converged
			}
		}
	})

	var runErr error
	eng.Spawn("chaos control", func(p *event.Proc) {
		defer eng.Stop() // heartbeats and watchdog polls re-arm forever
		if err := d.BootAll(p); err != nil {
			runErr = err
			return
		}
		d.EnableHeartbeats(cfg.Heartbeat)
		wd := d.StartWatchdog(cfg.Watchdog)
		wd.OnFailure = func(rec qdaemon.FailureRecord) { logf("attempt %d: watchdog: %s", attempt, rec) }
		wd.OnFalsePositive = func(rec qdaemon.FalsePositiveRecord) {
			logf("attempt %d: watchdog: rejected death report on live rank %d at %v", attempt, rec.Rank, rec.At)
		}
		plan.OnFire = func(f faultplan.Fault) { logf("attempt %d: inject %s (t=%v)", attempt, f, eng.Now()) }
		plan.Arm(eng, m, d.Net)
		plan.ArmHost(eng, len(m.Nodes), &chaosHost{fs: fs, wd: wd})
		// Restore on the sim clock: the control process pays RAID read
		// latency and retry backoff before the relaunch, so a fault
		// landing mid-recovery lands *during* these sleeps.
		x0, baseIter, rerr := sup.restore(p, attempt, past)
		if rerr != nil {
			runErr = rerr
			return
		}
		rst.x0, rst.iter = x0, baseIter
		logf("attempt %d: restored iteration %d at %v", attempt, baseIter, p.Now())
		if d.Aborted() != nil {
			// A second-order fault landed while the partition was still
			// re-forming: re-enter detection/isolation. The launch below
			// returns the pending abort without starting the job.
			rank := -1
			if n := len(wd.Failures); n > 0 {
				rank = wd.Failures[n-1].Rank
			}
			sup.stats.Redetects++
			sup.rung(attempt, RungRedetect, rank, 0, p.Now())
		}
		_, runErr = d.Run(p, fmt.Sprintf("chaos-a%d", attempt), prog)
	})
	if err := eng.RunAll(); err != nil {
		return res, err
	}
	if cfg.Telemetry {
		// Capture before the deferred teardown clears the registry.
		res.hists = m.Reg.Snapshot().Histograms
	}
	if wd := d.Watchdog(); wd != nil {
		for _, fp := range wd.FalsePositives {
			sup.rung(attempt, RungFalsePositive, fp.Rank, 0, fp.At)
		}
	}

	res.rec.Nodes = shape.Volume()
	res.rec.RestoredIter = rst.iter
	res.rec.Iterations = res.met.Iterations
	res.rec.EndedAt = eng.Now()
	var abort *qdaemon.AbortError
	switch {
	case errors.As(runErr, &abort):
		res.rec.Aborted = true
		res.rec.Converged = false
		res.rec.Failure = abort.Rec
		res.healthyPow2 = d.Part.LargestPow2Partition()
		return res, nil
	case runErr != nil:
		return res, runErr
	}
	if err := firstOf(errs); err != nil {
		return res, err
	}
	res.met.SimTime = res.rec.EndedAt
	return res, nil
}

// iterationsOf lists the iterations attempt a checkpointed (by rank-0
// chunk presence).
func iterationsOf(fs map[string][]byte, a int) map[int]bool {
	iters := map[int]bool{}
	prefix := fmt.Sprintf("ckpt/chaos/a%d/i", a)
	for name := range fs {
		var iter, rank int
		if _, err := fmt.Sscanf(name, prefix+"%06d/r%d", &iter, &rank); err == nil && rank == 0 {
			iters[iter] = true
		}
	}
	return iters
}

// computeDigest folds the whole run — attempt structure, failure
// records with their detection timing, every recovery-ladder rung,
// final numerics — into one FNV-1a fingerprint. This is the chaos
// determinism currency: two runs with the same -faultseed must agree
// here exactly.
func (o *ChaosOutcome) computeDigest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	mix(o.PlanDigest)
	for _, a := range o.Attempts {
		mix(uint64(a.Nodes))
		mix(uint64(a.RestoredIter))
		mix(uint64(a.Iterations))
		mix(b(a.Aborted))
		mix(b(a.Converged))
		mix(uint64(a.Failure.Rank))
		mix(uint64(a.Failure.Board))
		mix(b(a.Failure.Crashed))
		mix(uint64(a.Failure.DetectedAt))
		mix(uint64(a.Failure.DetectLatency))
		mix(uint64(a.EndedAt))
	}
	mix(uint64(len(o.Rungs)))
	for _, r := range o.Rungs {
		mix(uint64(r.Attempt))
		mix(uint64(r.Kind))
		mix(uint64(int64(r.Rank)))
		mix(uint64(r.Gen))
		mix(uint64(r.At))
	}
	mix(b(o.Converged))
	mix(math.Float64bits(o.RelResidual))
	mix(uint64(o.SolutionCRC))
	return h
}
