package core

// The chaos/recovery driver: run a distributed Wilson CG solve under a
// deterministic fault plan and survive it end to end — inject, detect,
// isolate, restore, converge (DESIGN.md §12, experiment E16).
//
// Each attempt is one hosted job: boot a machine through the full
// qdaemon protocol, arm heartbeats and the watchdog, arm the fault
// plan, and launch the solve as a qdaemon application whose ranks
// periodically checkpoint their solution iterate to host storage over
// the NFS shim. When the watchdog detects a node death it isolates the
// owning daughterboard and aborts the job; the driver then plays the
// operator's part of §3.1 — the failed daughterboard leaves the
// partition, the qdaemon re-forms the largest power-of-two partition
// from the survivors, and the job restarts there from the newest
// complete checkpoint. The recovered partition is simulated as its own
// machine (we model the partition the job runs on, not the idle
// remainder), with a fresh simulation clock: fault offsets and
// detection latencies are attempt-relative, and every one of them is
// folded into the outcome digest.
//
// Host storage (the FS map) is the one thing that survives an attempt:
// exactly the paper's recovery story, where weeks-long runs live and
// die by the configurations on the host RAID (§4).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/qmp"
	"qcdoc/internal/qos"
	"qcdoc/internal/solver"
	"qcdoc/internal/telemetry"
)

// ChaosConfig parameterizes a chaos run.
type ChaosConfig struct {
	// Shape is the initial machine; Global the lattice.
	Shape  geom.Shape
	Global lattice.Shape4
	// Seed draws the gauge configuration and source; FaultSeed the
	// fault plan.
	Seed      uint64
	FaultSeed uint64

	Mass    float64
	Tol     float64
	MaxIter int
	// CheckpointEvery is the solver-state checkpoint interval in CG
	// iterations.
	CheckpointEvery int
	// MaxAttempts bounds restarts (a plan can kill more than one node).
	MaxAttempts int

	// Heartbeat is the node liveness tick period; Watchdog the host
	// detection policy.
	Heartbeat event.Time
	Watchdog  qdaemon.WatchdogConfig

	// Spec describes the faults to draw from FaultSeed.
	Spec faultplan.Spec

	// Shards/Workers select sharded parallel simulation for each
	// attempt's machine (see machine.Config); the outcome digest is
	// invariant under Workers.
	Shards  int
	Workers int

	// Pool recycles engine storage and frame rings across attempts and
	// across runs (fleet substrate); nil disables pooling. Pooling never
	// changes the outcome digest.
	Pool *machine.Pool

	// Telemetry enables the full observability layer on every attempt's
	// machine and collects the merged histogram snapshots into the
	// outcome. The digest is invariant under this flag — that invariance
	// is the zero-perturbation gate (DESIGN.md §15).
	Telemetry bool

	// Log, when set, receives a human-readable narrative of the run.
	Log io.Writer
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Mass == 0 {
		c.Mass = 0.5
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 400
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 100 * event.Microsecond
	}
	return c
}

// ChaosAttempt is the observable outcome of one hosted job attempt.
type ChaosAttempt struct {
	Nodes        int
	RestoredIter int
	Iterations   int
	Aborted      bool
	Converged    bool
	Failure      qdaemon.FailureRecord
	EndedAt      event.Time
}

func (a ChaosAttempt) String() string {
	if a.Aborted {
		return fmt.Sprintf("%d nodes, restored iter %d: aborted (%s) at %v",
			a.Nodes, a.RestoredIter, a.Failure, a.EndedAt)
	}
	return fmt.Sprintf("%d nodes, restored iter %d: %d iterations, converged=%v at %v",
		a.Nodes, a.RestoredIter, a.Iterations, a.Converged, a.EndedAt)
}

// ChaosOutcome reports a chaos run.
type ChaosOutcome struct {
	Attempts    []ChaosAttempt
	Converged   bool
	RelResidual float64
	// SolutionCRC fingerprints the gathered solution field.
	SolutionCRC uint32
	// PlanDigest fingerprints the fault schedule; Digest the entire
	// run, recovery-event timing included. Two runs with the same seeds
	// must agree on both bit for bit.
	PlanDigest uint64
	Digest     uint64
	// Hists, when ChaosConfig.Telemetry was set, carries the machine
	// latency distributions merged over every attempt. Deliberately NOT
	// folded into Digest: the digest must be identical with telemetry
	// on or off.
	Hists map[string]telemetry.HistogramSnapshot
}

// attemptLayout remembers how an attempt spread the lattice over its
// machine, so the host can reassemble that attempt's checkpoints later.
type attemptLayout struct {
	shape geom.Shape
	lay   Layout
}

// chunkName is the host-storage path of one rank's solver-state chunk.
func chunkName(attempt, iter, rank int) string {
	return fmt.Sprintf("ckpt/chaos/a%d/i%06d/r%d", attempt, iter, rank)
}

// RunChaosWilson runs a distributed Wilson CG solve under the fault
// plan drawn from cfg.FaultSeed, recovering from detected node deaths
// by repartition + checkpoint restore until the solve converges or
// MaxAttempts is exhausted.
func RunChaosWilson(cfg ChaosConfig) (*ChaosOutcome, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	gauge := lattice.NewGaugeField(cfg.Global)
	gauge.Randomize(cfg.Seed)
	b := lattice.NewFermionField(cfg.Global)
	b.Gaussian(cfg.Seed + 1)

	plan := faultplan.Generate(cfg.FaultSeed, cfg.Spec, cfg.Shape.Volume())
	out := &ChaosOutcome{PlanDigest: plan.Digest()}
	logf("%s", plan)

	// fs is the host RAID storage: the one artifact that survives an
	// attempt. Checkpoint chunks commit here all-or-nothing (the NFS
	// shim assembles a file only when every chunk arrived).
	fs := map[string][]byte{}
	nodes := cfg.Shape.Volume()
	var past []attemptLayout
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		shape := cfg.Shape
		if attempt > 0 {
			shape = machine.GuessShape(nodes)
		}
		lay, err := NewLayout(shape, cfg.Global)
		if err != nil {
			return out, err
		}
		x0, baseIter := restoreNewest(fs, past, cfg.Global)
		logf("attempt %d: %d nodes %v, restored iteration %d", attempt, shape.Volume(), shape, baseIter)

		att, err := runChaosAttempt(cfg, attempt, shape, lay, plan, gauge, b, x0, baseIter, fs, logf)
		past = append(past, attemptLayout{shape: shape, lay: lay})
		if err != nil {
			return out, err
		}
		out.Attempts = append(out.Attempts, att.rec)
		out.Hists = telemetry.MergeHistogramMaps(out.Hists, att.hists)
		if att.rec.Aborted {
			nodes = att.healthyPow2
			logf("attempt %d: %s", attempt, att.rec.Failure)
			if nodes < 1 {
				return out, fmt.Errorf("core: no healthy partition left after %s", att.rec.Failure)
			}
			continue
		}
		out.Converged = att.rec.Converged
		out.RelResidual = att.met.RelResidual
		out.SolutionCRC = checkpoint.FermionCRC(att.solution)
		break
	}
	out.Digest = out.computeDigest()
	if !out.Converged {
		return out, fmt.Errorf("core: chaos run did not converge in %d attempts", len(out.Attempts))
	}
	logf("converged: residual %.2g, solution CRC %#x, digest %#x",
		out.RelResidual, out.SolutionCRC, out.Digest)
	return out, nil
}

// chaosAttempt is the raw result of one attempt.
type chaosAttempt struct {
	rec         ChaosAttempt
	met         SolveMetrics
	solution    *lattice.FermionField
	healthyPow2 int
	hists       map[string]telemetry.HistogramSnapshot
}

func runChaosAttempt(cfg ChaosConfig, attempt int, shape geom.Shape, lay Layout,
	plan *faultplan.Plan, gauge *lattice.GaugeField, b, x0 *lattice.FermionField,
	baseIter int, fs map[string][]byte, logf func(string, ...any)) (chaosAttempt, error) {

	res := chaosAttempt{}
	eng := cfg.Pool.NewEngine()
	mcfg := machine.DefaultConfig(shape)
	mcfg.Shards = cfg.Shards
	mcfg.Workers = cfg.Workers
	mcfg.Pool = cfg.Pool
	m := machine.Build(eng, mcfg)
	defer func() {
		eng.Shutdown()
		cfg.Pool.Reclaim(eng, m)
	}()
	if cfg.Telemetry {
		m.EnableTelemetry()
	}
	if err := m.TrainLinks(); err != nil {
		return res, err
	}
	d := qdaemon.New(eng, m)
	d.FS = fs

	dec := lay.Dec
	res.solution = lattice.NewFermionField(cfg.Global)
	errs := make([]error, shape.Volume())
	prog := fmt.Sprintf("chaos-wilson-a%d", attempt)
	d.LoadProgram(prog, func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(gauge, dec, gc)
			localB := ScatterFermion(b, dec, gc)
			dw := NewDistWilson(ctx, comm, dec, localG, cfg.Mass, fermion.Double)
			ss := DistSpace(ctx, comm, dec, fermion.WilsonKind, fermion.Double)
			sp := distSpinorSpace(ss)
			x := ScatterFermion(x0, dec, gc) // warm restart from the restored iterate
			k := qos.FromCtx(ctx)
			ck := solver.Checkpoint[*lattice.FermionField]{
				Every: cfg.CheckpointEvery,
				Save: func(iter int, cur *lattice.FermionField) {
					// Observability envelope: one flow + span per chunk so a
					// checkpoint stream exports as a Chrome-trace flow, and
					// the write's sim time lands in the CkptWrite histogram.
					peng := ctx.P.Engine()
					flow := peng.NewFlow()
					prev := peng.SetFlow(flow)
					peng.MarkSpanBegin("ckpt-chunk")
					start := ctx.P.Now()
					var buf bytes.Buffer
					if err := checkpoint.WriteSolverState(&buf, cur, uint32(baseIter+iter)); err != nil {
						panic(err) // bytes.Buffer writes cannot fail
					}
					k.WriteFile(ctx.P, chunkName(attempt, baseIter+iter, rank), buf.Bytes())
					peng.SetFlow(flow)
					peng.MarkSpanEnd("ckpt-chunk")
					peng.SetFlow(prev)
					if ctr := ctx.N.Counters(); ctr != nil {
						ctr.CkptWrite.Record(uint64(ctx.P.Now() - start))
					}
				},
			}
			r, err := solver.CGNECheckpointed(sp, dw.Apply, dw.ApplyDag, x, localB, cfg.Tol, cfg.MaxIter, ck)
			errs[rank] = err
			GatherFermion(res.solution, dec, gc, x)
			if rank == 0 {
				res.met.Iterations = r.Iterations
				res.met.RelResidual = r.RelResidual
				res.rec.Converged = r.Converged
			}
		}
	})

	var runErr error
	eng.Spawn("chaos control", func(p *event.Proc) {
		defer eng.Stop() // heartbeats and watchdog polls re-arm forever
		if err := d.BootAll(p); err != nil {
			runErr = err
			return
		}
		d.EnableHeartbeats(cfg.Heartbeat)
		wd := d.StartWatchdog(cfg.Watchdog)
		wd.OnFailure = func(rec qdaemon.FailureRecord) { logf("attempt %d: watchdog: %s", attempt, rec) }
		plan.OnFire = func(f faultplan.Fault) { logf("attempt %d: inject %s (t=%v)", attempt, f, eng.Now()) }
		plan.Arm(eng, m, d.Net)
		_, runErr = d.Run(p, fmt.Sprintf("chaos-a%d", attempt), prog)
	})
	if err := eng.RunAll(); err != nil {
		return res, err
	}
	if cfg.Telemetry {
		// Capture before the deferred teardown clears the registry.
		res.hists = m.Reg.Snapshot().Histograms
	}

	res.rec.Nodes = shape.Volume()
	res.rec.RestoredIter = baseIter
	res.rec.Iterations = res.met.Iterations
	res.rec.EndedAt = eng.Now()
	var abort *qdaemon.AbortError
	switch {
	case errors.As(runErr, &abort):
		res.rec.Aborted = true
		res.rec.Converged = false
		res.rec.Failure = abort.Rec
		res.healthyPow2 = d.Part.LargestPow2Partition()
		return res, nil
	case runErr != nil:
		return res, runErr
	}
	if err := firstOf(errs); err != nil {
		return res, err
	}
	res.met.SimTime = res.rec.EndedAt
	return res, nil
}

// restoreNewest reassembles the newest complete checkpoint written by
// any past attempt: latest attempt first, highest iteration first, and
// only sets where every rank's chunk is present, CRC-valid, of solver
// kind, shape-consistent, and stamped with the same iteration. Returns
// a zero field and iteration 0 when nothing is restorable.
func restoreNewest(fs map[string][]byte, past []attemptLayout, global lattice.Shape4) (*lattice.FermionField, int) {
	x0 := lattice.NewFermionField(global)
	for a := len(past) - 1; a >= 0; a-- {
		al := past[a]
		// Collect candidate iterations for this attempt from rank 0's
		// chunks (a set without rank 0 is incomplete by definition).
		best := -1
		for iter := range iterationsOf(fs, a) {
			if iter > best && completeSet(fs, a, iter, al, nil) {
				best = iter
			}
		}
		if best < 0 {
			continue
		}
		gather := func(rank int, local *lattice.FermionField) {
			gc := GridCoord(al.lay.Fold.ToLogical(al.shape.CoordOf(rank)))
			GatherFermion(x0, al.lay.Dec, gc, local)
		}
		completeSet(fs, a, best, al, gather)
		return x0, best
	}
	return x0, 0
}

// iterationsOf lists the iterations attempt a checkpointed (by rank-0
// chunk presence).
func iterationsOf(fs map[string][]byte, a int) map[int]bool {
	iters := map[int]bool{}
	prefix := fmt.Sprintf("ckpt/chaos/a%d/i", a)
	for name := range fs {
		var iter, rank int
		if _, err := fmt.Sscanf(name, prefix+"%06d/r%d", &iter, &rank); err == nil && rank == 0 {
			iters[iter] = true
		}
	}
	return iters
}

// completeSet verifies (and optionally gathers) one attempt+iteration
// checkpoint set.
func completeSet(fs map[string][]byte, a, iter int, al attemptLayout,
	gather func(rank int, local *lattice.FermionField)) bool {
	for rank := 0; rank < al.shape.Volume(); rank++ {
		blob, ok := fs[chunkName(a, iter, rank)]
		if !ok {
			return false
		}
		local, it, err := checkpoint.ReadSolverState(bytes.NewReader(blob))
		if err != nil || int(it) != iter || local.L != al.lay.Dec.Local {
			return false
		}
		if gather != nil {
			gather(rank, local)
		}
	}
	return true
}

// computeDigest folds the whole run — attempt structure, failure
// records with their detection timing, final numerics — into one
// FNV-1a fingerprint. This is the chaos determinism currency: two runs
// with the same -faultseed must agree here exactly.
func (o *ChaosOutcome) computeDigest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	mix(o.PlanDigest)
	for _, a := range o.Attempts {
		mix(uint64(a.Nodes))
		mix(uint64(a.RestoredIter))
		mix(uint64(a.Iterations))
		mix(b(a.Aborted))
		mix(b(a.Converged))
		mix(uint64(a.Failure.Rank))
		mix(uint64(a.Failure.Board))
		mix(b(a.Failure.Crashed))
		mix(uint64(a.Failure.DetectedAt))
		mix(uint64(a.Failure.DetectLatency))
		mix(uint64(a.EndedAt))
	}
	mix(b(o.Converged))
	mix(math.Float64bits(o.RelResidual))
	mix(uint64(o.SolutionCRC))
	return h
}
