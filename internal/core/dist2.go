package core

import (
	"fmt"

	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// DistClover is the distributed clover-improved Wilson operator: the
// Wilson hopping term with halo exchange plus the site-local clover
// term. The term is precomputed on the full configuration when the job
// is set up (as production codes do once per configuration) and
// scattered to the nodes; the per-iteration work — the benchmarked part
// — runs entirely on-machine.
type DistClover struct {
	*DistWilson
	term [][4][4]latmath.Mat3
}

// NewDistClover builds the operator on one node. ref must be the clover
// operator constructed on the global gauge field.
func NewDistClover(ctx *node.Ctx, comm *qmp.Comm, dec lattice.Decomp, localGauge *lattice.GaugeField, ref *fermion.Clover, prec fermion.Precision) *DistClover {
	dw := NewDistWilson(ctx, comm, dec, localGauge, ref.Mass, prec)
	level := fermion.WorkingSetLevel(fermion.CloverKind, prec, dec.LocalVolume())
	dw.siteCost = fermion.SiteCost(fermion.CloverKind, prec, level)
	gc := GridCoord(comm.Coord())
	v := dec.Local.Volume()
	term := make([][4][4]latmath.Mat3, v)
	for idx := 0; idx < v; idx++ {
		gs := dec.GlobalOf(gc, dec.Local.SiteOf(idx))
		term[idx] = ref.TermAt(ref.G.L.Index(gs))
	}
	return &DistClover{DistWilson: dw, term: term}
}

// Name identifies the operator.
func (d *DistClover) Name() string { return "dist-clover" }

// Apply computes dst = D_clover src.
func (d *DistClover) Apply(dst, src *lattice.FermionField) {
	d.DistWilson.Apply(dst, src)
	for idx := range src.S {
		var extra latmath.Spinor
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				m := &d.term[idx][a][b]
				if *m == latmath.Zero3() {
					continue
				}
				extra[a] = extra[a].Add(m.MulVec(src.S[idx][b]))
			}
		}
		dst.S[idx] = dst.S[idx].Add(extra)
	}
}

// ApplyDag computes dst = D† src = γ5 D γ5 src.
func (d *DistClover) ApplyDag(dst, src *lattice.FermionField) {
	l := d.dec.Local
	tmp := lattice.NewFermionField(l)
	for i := range src.S {
		tmp.S[i] = latmath.Gamma5.ApplySpin(src.S[i])
	}
	mid := lattice.NewFermionField(l)
	d.Apply(mid, tmp)
	for i := range mid.S {
		dst.S[i] = latmath.Gamma5.ApplySpin(mid.S[i])
	}
}

// DistASQTAD is the distributed ASQTAD staggered operator. Fat and long
// links are precomputed on the global configuration and scattered; the
// halo exchange ships, per direction, three boundary layers of color
// vectors — the third-nearest-neighbour communication the paper notes
// improved discretizations need (§1). Forward-hop ghosts travel as plain
// vectors (the receiver applies its locally stored links); backward-hop
// contributions are link-applied and coefficient-folded by the sender,
// pre-summed so the wire cost stays three vectors per face site.
type DistASQTAD struct {
	ctx  *node.Ctx
	comm *qmp.Comm
	dec  lattice.Decomp
	gc   lattice.Site // grid coordinate, for global staggered phases
	Fat  *lattice.GaugeField
	Long *lattice.GaugeField
	Mass float64
	Naik float64

	siteCost kernelCharge
	timing   bool

	layers   [lattice.Ndim][3][]int // low layers 0..2 (send targets & ghost mapping)
	hiLayers [lattice.Ndim][3][]int // high layers L-3..L-1
	sendLo   [lattice.Ndim]uint64   // plain chi, 3 layers, toward -mu
	sendHi   [lattice.Ndim]uint64   // combined bwd terms, 3 layers, toward +mu
	recvLo   [lattice.Ndim]uint64   // combined bwd ghosts for our layers 0..2
	recvHi   [lattice.Ndim]uint64   // plain chi ghosts (neighbour layers 0..2)

	ghostPlain [lattice.Ndim][]latmath.Vec3 // chi of +mu neighbour layers 0..2
	ghostBwd   [lattice.Ndim][]latmath.Vec3 // combined backward contributions
}

// kernelCharge wraps the compute charge.
type kernelCharge struct {
	cost  func() // closure charging the node CPU
	valid bool
}

// NewDistASQTAD builds the operator on one node. ref must be built on
// the global gauge field; its fat and long links are scattered here.
// Local extents along distributed directions must be at least 3 (the
// Naik reach).
func NewDistASQTAD(ctx *node.Ctx, comm *qmp.Comm, dec lattice.Decomp, ref *fermion.ASQTAD, prec fermion.Precision) *DistASQTAD {
	d := &DistASQTAD{
		ctx:  ctx,
		comm: comm,
		dec:  dec,
		Mass: ref.Mass,
		Naik: ref.Naik,
	}
	gc := GridCoord(comm.Coord())
	d.gc = gc
	d.Fat = ScatterGauge(ref.Fat, dec, gc)
	d.Long = ScatterGauge(ref.Long, dec, gc)
	level := fermion.WorkingSetLevel(fermion.AsqtadKind, prec, dec.LocalVolume())
	cost := fermion.SiteCost(fermion.AsqtadKind, prec, level).Scale(float64(dec.LocalVolume()))
	d.siteCost = kernelCharge{cost: func() { ctx.N.Compute(ctx.P, cost) }, valid: true}
	d.timing = true
	l := dec.Local
	for mu := 0; mu < lattice.Ndim; mu++ {
		if dec.Grid[mu] == 1 {
			continue
		}
		if l[mu] < 3 {
			panic(fmt.Sprintf("core: ASQTAD needs local extent >= 3 in distributed direction %d (have %d)", mu, l[mu]))
		}
		fv := lattice.FaceVolume(l, mu)
		words := 3 * fv * latmath.Vec3Words
		for k := 0; k < 3; k++ {
			d.layers[mu][k] = lattice.LayerSites(l, mu, k)
			d.hiLayers[mu][k] = lattice.LayerSites(l, mu, l[mu]-3+k)
		}
		d.sendLo[mu] = ctx.N.AllocWords(words)
		d.sendHi[mu] = ctx.N.AllocWords(words)
		d.recvLo[mu] = ctx.N.AllocWords(words)
		d.recvHi[mu] = ctx.N.AllocWords(words)
		d.ghostPlain[mu] = make([]latmath.Vec3, 3*fv)
		d.ghostBwd[mu] = make([]latmath.Vec3, 3*fv)
	}
	return d
}

// Name identifies the operator.
func (d *DistASQTAD) Name() string { return "dist-asqtad" }

// SetTiming enables or disables the CPU charge.
func (d *DistASQTAD) SetTiming(on bool) { d.timing = on }

func (d *DistASQTAD) packVec(addr uint64, slot int, v latmath.Vec3) {
	var buf [latmath.Vec3Words]uint64
	latmath.PackVec3(v, buf[:])
	base := addr + 8*uint64(slot*latmath.Vec3Words)
	for k, w := range buf {
		d.ctx.N.Mem.WriteWord(base+8*uint64(k), w)
	}
}

func (d *DistASQTAD) unpackVec(addr uint64, slot int) latmath.Vec3 {
	var buf [latmath.Vec3Words]uint64
	base := addr + 8*uint64(slot*latmath.Vec3Words)
	for k := range buf {
		buf[k] = d.ctx.N.Mem.ReadWord(base + 8*uint64(k))
	}
	return latmath.UnpackVec3(buf[:])
}

// exchange ships the staggered halos, overlapping with the compute
// charge.
func (d *DistASQTAD) exchange(src *lattice.ColorField) {
	p := d.ctx.P
	l := d.dec.Local
	cn := complex(d.Naik, 0)
	var transfers []*scu.Transfer
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		fv := lattice.FaceVolume(l, mu)
		words := 3 * fv * latmath.Vec3Words
		rtHi, err := d.comm.StartRecv(mu, geom.Fwd, scu.Contiguous(d.recvHi[mu], words))
		check(err)
		rtLo, err := d.comm.StartRecv(mu, geom.Bwd, scu.Contiguous(d.recvLo[mu], words))
		check(err)
		transfers = append(transfers, rtHi, rtLo)

		// Toward -mu: our layers 0..2 plain (the -mu neighbour's forward
		// ghosts).
		for k := 0; k < 3; k++ {
			for i, idx := range d.layers[mu][k] {
				d.packVec(d.sendLo[mu], k*fv+i, src.V[idx])
			}
		}
		stLo, err := d.comm.StartSend(mu, geom.Bwd, scu.Contiguous(d.sendLo[mu], words))
		check(err)

		// Toward +mu: combined backward contributions for the neighbour's
		// layers 0..2.
		lm := l[mu]
		for i := range d.layers[mu][0] {
			// Target layer 0: fat from our top layer + Naik from layer L-3.
			yTop := d.hiLayers[mu][2][i] // x_mu = L-1
			yNk0 := d.hiLayers[mu][0][i] // x_mu = L-3
			xTop := l.SiteOf(yTop)
			xNk0 := l.SiteOf(yNk0)
			v0 := d.Fat.Link(xTop, mu).DagMulVec(src.V[yTop]).
				Add(d.Long.Link(xNk0, mu).DagMulVec(src.V[yNk0]).Scale(cn))
			d.packVec(d.sendHi[mu], 0*fv+i, v0)
			// Target layer 1: Naik from layer L-2.
			yNk1 := d.hiLayers[mu][1][i]
			v1 := d.Long.Link(l.SiteOf(yNk1), mu).DagMulVec(src.V[yNk1]).Scale(cn)
			d.packVec(d.sendHi[mu], 1*fv+i, v1)
			// Target layer 2: Naik from layer L-1.
			v2 := d.Long.Link(xTop, mu).DagMulVec(src.V[yTop]).Scale(cn)
			d.packVec(d.sendHi[mu], 2*fv+i, v2)
			_ = lm
		}
		stHi, err := d.comm.StartSend(mu, geom.Fwd, scu.Contiguous(d.sendHi[mu], words))
		check(err)
		transfers = append(transfers, stLo, stHi)
	}
	if d.timing && d.siteCost.valid {
		d.siteCost.cost()
	}
	qmp.WaitAll(p, transfers...)
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		fv := lattice.FaceVolume(l, mu)
		for s := 0; s < 3*fv; s++ {
			d.ghostPlain[mu][s] = d.unpackVec(d.recvHi[mu], s)
			d.ghostBwd[mu][s] = d.unpackVec(d.recvLo[mu], s)
		}
	}
}

// faceIndexOf builds the local index of the site with x's transverse
// coordinates at layer k of direction mu.
func faceIndexOf(l lattice.Shape4, x lattice.Site, mu, k int) int {
	y := x
	y[mu] = k
	return l.Index(y)
}

// Apply computes dst = D src with halo exchange.
func (d *DistASQTAD) Apply(dst, src *lattice.ColorField) {
	d.exchange(src)
	l := d.dec.Local
	v := l.Volume()
	cn := complex(d.Naik, 0)
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		gx := d.dec.GlobalOf(d.gc, x)
		acc := src.V[idx].Scale(complex(d.Mass, 0))
		for mu := 0; mu < lattice.Ndim; mu++ {
			e := complex(0.5*etaPhase(gx, mu), 0)
			distributed := d.dec.Grid[mu] > 1
			fv := 0
			if distributed {
				fv = lattice.FaceVolume(l, mu)
			}
			var hop latmath.Vec3
			// Forward fat: F_mu(x) chi(x+mu).
			if distributed && x[mu] == l[mu]-1 {
				pos := facePos(d.layers[mu][0], faceIndexOf(l, x, mu, 0))
				hop = hop.Add(d.Fat.Link(x, mu).MulVec(d.ghostPlain[mu][0*fv+pos]))
			} else {
				hop = hop.Add(d.Fat.Link(x, mu).MulVec(src.V[l.Index(l.Hop(x, mu, 1))]))
			}
			// Forward Naik: c_N L_mu(x) chi(x+3mu).
			if distributed && x[mu] >= l[mu]-3 {
				layer := x[mu] + 3 - l[mu]
				pos := facePos(d.layers[mu][layer], faceIndexOf(l, x, mu, layer))
				hop = hop.Add(d.Long.Link(x, mu).MulVec(d.ghostPlain[mu][layer*fv+pos]).Scale(cn))
			} else {
				hop = hop.Add(d.Long.Link(x, mu).MulVec(src.V[l.Index(l.Hop(x, mu, 3))]).Scale(cn))
			}
			// Backward fat: -F†_mu(x-mu) chi(x-mu).
			if distributed && x[mu] == 0 {
				// Included in the combined ghost below.
			} else {
				xm := l.Hop(x, mu, -1)
				hop = hop.Sub(d.Fat.Link(xm, mu).DagMulVec(src.V[l.Index(xm)]))
			}
			// Backward Naik: -c_N L†_mu(x-3mu) chi(x-3mu).
			if distributed && x[mu] < 3 {
				// Included in the combined ghost below.
			} else {
				xm := l.Hop(x, mu, -3)
				hop = hop.Sub(d.Long.Link(xm, mu).DagMulVec(src.V[l.Index(xm)]).Scale(cn))
			}
			// Combined backward ghosts (sender-applied links, coefficient
			// folded).
			if distributed && x[mu] < 3 {
				pos := facePos(d.layers[mu][x[mu]], idx)
				hop = hop.Sub(d.ghostBwd[mu][x[mu]*fv+pos])
			}
			acc = acc.Add(hop.Scale(e))
		}
		dst.V[idx] = acc
	}
}

// ApplyDag computes dst = (2m - D) src.
func (d *DistASQTAD) ApplyDag(dst, src *lattice.ColorField) {
	d.Apply(dst, src)
	for i := range dst.V {
		dst.V[i] = src.V[i].Scale(complex(2*d.Mass, 0)).Sub(dst.V[i])
	}
}

// etaPhase is the Kogut-Susskind phase for GLOBAL coordinates: the local
// site's phase must be computed from its global position or the phases
// break at node boundaries. The caller passes the global site.
func etaPhase(x lattice.Site, mu int) float64 {
	s := 0
	for nu := 0; nu < mu; nu++ {
		s += x[nu]
	}
	if s%2 == 1 {
		return -1
	}
	return 1
}
