package core

import (
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/node"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// DistDWF is the distributed domain-wall operator: the 4-D Wilson-style
// halo exchange repeated for each of the Ls fifth-dimension slices (the
// fifth dimension stays node-local — QCDOC could also map it onto a
// machine axis; see DESIGN.md's future-work list). The gauge field is
// shared by all slices, which is the data reuse behind the DWF kernel's
// high efficiency (§4).
type DistDWF struct {
	ctx  *node.Ctx
	comm *qmp.Comm
	dec  lattice.Decomp
	G    *lattice.GaugeField
	M5   float64
	Mf   float64
	Ls   int

	siteCost ppc440.KernelCost
	timing   bool

	faces    [lattice.Ndim][2][]int
	sendAddr [lattice.Ndim][2]uint64
	recvAddr [lattice.Ndim][2]uint64
	// ghosts indexed [s*faceVol + i].
	ghostFwd [lattice.Ndim][]latmath.HalfSpinor
	ghostBwd [lattice.Ndim][]latmath.HalfSpinor
}

// NewDistDWF builds the operator on one node.
func NewDistDWF(ctx *node.Ctx, comm *qmp.Comm, dec lattice.Decomp, localGauge *lattice.GaugeField, m5, mf float64, ls int, prec fermion.Precision) *DistDWF {
	d := &DistDWF{
		ctx: ctx, comm: comm, dec: dec,
		G: localGauge, M5: m5, Mf: mf, Ls: ls,
	}
	level := fermion.WorkingSetLevel(fermion.DWFKind, prec, dec.LocalVolume()*ls)
	d.siteCost = fermion.DWFSiteCost(prec, level, ls)
	d.timing = true
	l := dec.Local
	for mu := 0; mu < lattice.Ndim; mu++ {
		if dec.Grid[mu] == 1 {
			continue
		}
		fv := lattice.FaceVolume(l, mu)
		words := ls * fv * latmath.HalfSpinorWords
		for end := 0; end < 2; end++ {
			d.faces[mu][end] = lattice.FaceSites(l, mu, end)
			d.sendAddr[mu][end] = ctx.N.AllocWords(words)
			d.recvAddr[mu][end] = ctx.N.AllocWords(words)
		}
		d.ghostFwd[mu] = make([]latmath.HalfSpinor, ls*fv)
		d.ghostBwd[mu] = make([]latmath.HalfSpinor, ls*fv)
	}
	return d
}

// Name identifies the operator.
func (d *DistDWF) Name() string { return "dist-dwf" }

// SetTiming enables or disables the CPU charge.
func (d *DistDWF) SetTiming(on bool) { d.timing = on }

func (d *DistDWF) exchange(src *fermion.Field5) {
	p := d.ctx.P
	n := d.ctx.N
	l := d.dec.Local
	v4 := l.Volume()
	var transfers []*scu.Transfer
	var buf [latmath.HalfSpinorWords]uint64
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		fv := len(d.faces[mu][0])
		words := d.Ls * fv * latmath.HalfSpinorWords
		rtF, err := d.comm.StartRecv(mu, geom.Fwd, scu.Contiguous(d.recvAddr[mu][1], words))
		check(err)
		rtB, err := d.comm.StartRecv(mu, geom.Bwd, scu.Contiguous(d.recvAddr[mu][0], words))
		check(err)
		transfers = append(transfers, rtF, rtB)
		for s := 0; s < d.Ls; s++ {
			for i, idx := range d.faces[mu][0] {
				h := latmath.Project(mu, +1, src.S[s*v4+idx])
				latmath.PackHalfSpinor(h, buf[:])
				base := d.sendAddr[mu][0] + 8*uint64((s*fv+i)*latmath.HalfSpinorWords)
				for k, w := range buf {
					n.Mem.WriteWord(base+8*uint64(k), w)
				}
			}
			for i, idx := range d.faces[mu][1] {
				x := l.SiteOf(idx)
				h := latmath.Project(mu, -1, src.S[s*v4+idx]).DagMulMat(d.G.Link(x, mu))
				latmath.PackHalfSpinor(h, buf[:])
				base := d.sendAddr[mu][1] + 8*uint64((s*fv+i)*latmath.HalfSpinorWords)
				for k, w := range buf {
					n.Mem.WriteWord(base+8*uint64(k), w)
				}
			}
		}
		stB, err := d.comm.StartSend(mu, geom.Bwd, scu.Contiguous(d.sendAddr[mu][0], words))
		check(err)
		stF, err := d.comm.StartSend(mu, geom.Fwd, scu.Contiguous(d.sendAddr[mu][1], words))
		check(err)
		transfers = append(transfers, stB, stF)
	}
	if d.timing {
		n.Compute(p, d.siteCost.Scale(float64(v4*d.Ls)))
	}
	qmp.WaitAll(p, transfers...)
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		fv := len(d.faces[mu][0])
		for s := 0; s < d.Ls*fv; s++ {
			base := d.recvAddr[mu][1] + 8*uint64(s*latmath.HalfSpinorWords)
			for k := range buf {
				buf[k] = n.Mem.ReadWord(base + 8*uint64(k))
			}
			d.ghostFwd[mu][s] = latmath.UnpackHalfSpinor(buf[:])
			base = d.recvAddr[mu][0] + 8*uint64(s*latmath.HalfSpinorWords)
			for k := range buf {
				buf[k] = n.Mem.ReadWord(base + 8*uint64(k))
			}
			d.ghostBwd[mu][s] = latmath.UnpackHalfSpinor(buf[:])
		}
	}
}

// Apply computes dst = D src with halo exchange.
func (d *DistDWF) Apply(dst, src *fermion.Field5) {
	d.exchange(src)
	l := d.dec.Local
	v4 := l.Volume()
	diag := complex(-d.M5+4+1, 0)
	for s := 0; s < d.Ls; s++ {
		for idx := 0; idx < v4; idx++ {
			x := l.SiteOf(idx)
			var acc latmath.Spinor
			for mu := 0; mu < lattice.Ndim; mu++ {
				distributed := d.dec.Grid[mu] > 1
				fv := 0
				if distributed {
					fv = len(d.faces[mu][0])
				}
				if distributed && x[mu] == l[mu]-1 {
					pos := facePos(d.faces[mu][1], idx)
					h := d.ghostFwd[mu][s*fv+pos].MulMat(d.G.Link(x, mu))
					acc = acc.Add(latmath.Reconstruct(mu, +1, h))
				} else {
					xp := l.Neighbor(x, mu, +1)
					h := latmath.Project(mu, +1, src.S[s*v4+l.Index(xp)]).MulMat(d.G.Link(x, mu))
					acc = acc.Add(latmath.Reconstruct(mu, +1, h))
				}
				if distributed && x[mu] == 0 {
					pos := facePos(d.faces[mu][0], idx)
					acc = acc.Add(latmath.Reconstruct(mu, -1, d.ghostBwd[mu][s*fv+pos]))
				} else {
					xm := l.Neighbor(x, mu, -1)
					h := latmath.Project(mu, -1, src.S[s*v4+l.Index(xm)]).DagMulMat(d.G.Link(xm, mu))
					acc = acc.Add(latmath.Reconstruct(mu, -1, h))
				}
			}
			out := src.S[s*v4+idx].Scale(diag).Sub(acc.Scale(0.5))
			if up := s + 1; up < d.Ls {
				out = out.Sub(projMinus5(src.S[up*v4+idx]))
			} else {
				out = out.AXPY(complex(d.Mf, 0), projMinus5(src.S[0*v4+idx]))
			}
			if dn := s - 1; dn >= 0 {
				out = out.Sub(projPlus5(src.S[dn*v4+idx]))
			} else {
				out = out.AXPY(complex(d.Mf, 0), projPlus5(src.S[(d.Ls-1)*v4+idx]))
			}
			dst.S[s*v4+idx] = out
		}
	}
}

// ApplyDag computes dst = D† src = R γ5 D γ5 R src.
func (d *DistDWF) ApplyDag(dst, src *fermion.Field5) {
	tmp := d.reflectGamma5(src)
	mid := fermion.NewField5(d.dec.Local, d.Ls)
	d.Apply(mid, tmp)
	out := d.reflectGamma5(mid)
	copy(dst.S, out.S)
}

func (d *DistDWF) reflectGamma5(f *fermion.Field5) *fermion.Field5 {
	v4 := d.dec.Local.Volume()
	out := fermion.NewField5(d.dec.Local, d.Ls)
	for s := 0; s < d.Ls; s++ {
		rs := d.Ls - 1 - s
		for idx := 0; idx < v4; idx++ {
			out.S[s*v4+idx] = latmath.Gamma5.ApplySpin(f.S[rs*v4+idx])
		}
	}
	return out
}

func projPlus5(s latmath.Spinor) latmath.Spinor {
	g5 := latmath.Gamma5.ApplySpin(s)
	return s.Add(g5).Scale(0.5)
}

func projMinus5(s latmath.Spinor) latmath.Spinor {
	g5 := latmath.Gamma5.ApplySpin(s)
	return s.Sub(g5).Scale(0.5)
}
