package core

import (
	"math"
	"testing"

	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/solver"
)

func TestFoldTo4D(t *testing.T) {
	cases := []struct {
		shape geom.Shape
		grid  lattice.Shape4
	}{
		{geom.MakeShape(2, 2, 2, 2), lattice.Shape4{2, 2, 2, 2}},
		{geom.MakeShape(8, 4, 4, 2, 2, 2), lattice.Shape4{16, 8, 4, 2}}, // 2s fold into the big axes
		{geom.MakeShape(4, 2), lattice.Shape4{4, 2, 1, 1}},
		{geom.MakeShape(1), lattice.Shape4{1, 1, 1, 1}},
	}
	for _, c := range cases {
		f, err := FoldTo4D(c.shape)
		if err != nil {
			t.Fatalf("%v: %v", c.shape, err)
		}
		ls := f.Logical()
		got := lattice.Shape4{ls[0], ls[1], ls[2], ls[3]}
		if got.Volume() != c.shape.Volume() {
			t.Fatalf("%v: grid %v loses nodes", c.shape, got)
		}
		if got != c.grid {
			t.Fatalf("%v: grid %v, want %v", c.shape, got, c.grid)
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	global := lattice.Shape4{4, 4, 4, 4}
	dec, err := lattice.NewDecomp(global, lattice.Shape4{2, 2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	f := lattice.NewFermionField(global)
	f.Gaussian(1)
	out := lattice.NewFermionField(global)
	for gx := 0; gx < 2; gx++ {
		for gy := 0; gy < 2; gy++ {
			gc := lattice.Site{gx, gy, 0, 0}
			local := ScatterFermion(f, dec, gc)
			GatherFermion(out, dec, gc, local)
		}
	}
	for i := range f.S {
		if out.S[i] != f.S[i] {
			t.Fatalf("site %d lost in scatter/gather", i)
		}
	}
	// Gauge scatter picks the right links.
	g := lattice.NewGaugeField(global)
	g.Randomize(2)
	lg := ScatterGauge(g, dec, lattice.Site{1, 0, 0, 0})
	site := lattice.Site{1, 1, 3, 2} // local (local shape is 2x2x4x4)
	gsite := lattice.Site{2 + 1, 1, 3, 2}
	if lg.Link(site, 2) != g.Link(gsite, 2) {
		t.Fatal("gauge scatter misaligned")
	}
}

// TestDistWilsonMatchesReference is the heart of the functional
// validation: the distributed operator on a real 16-node machine must
// reproduce the single-node reference bit-for-bit... up to the exact
// arithmetic, which is identical since both compute the same local
// expressions; we require agreement to near machine precision.
func TestDistWilsonMatchesReference(t *testing.T) {
	global := lattice.Shape4{4, 4, 4, 4}
	sess, err := NewSession(geom.MakeShape(2, 2, 2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(7)
	src := lattice.NewFermionField(global)
	src.Gaussian(8)
	mass := 0.3

	// Reference.
	ref := lattice.NewFermionField(global)
	fermion.NewWilson(gauge, mass).Apply(ref, src)

	// Distributed: one application per node, gathered.
	got := lattice.NewFermionField(global)
	dec := sess.Lay.Dec
	err = sess.M.RunSPMD("dslash-once", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, sess.Lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(gauge, dec, gc)
			localSrc := ScatterFermion(src, dec, gc)
			dw := NewDistWilson(ctx, comm, dec, localG, mass, fermion.Double)
			dst := lattice.NewFermionField(dec.Local)
			dw.Apply(dst, localSrc)
			GatherFermion(got, dec, gc, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := got.Clone()
	diff.AXPY(-1, ref)
	rel := diff.Norm2() / ref.Norm2()
	if rel > 1e-24 {
		t.Fatalf("distributed dslash deviates from reference: relative |diff|^2 = %g", rel)
	}
	if _, err := sess.M.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestDistWilsonDagAdjoint(t *testing.T) {
	global := lattice.Shape4{4, 4, 2, 2}
	sess, err := NewSession(geom.MakeShape(2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(9)
	ref := lattice.NewFermionField(global)
	src := lattice.NewFermionField(global)
	src.Gaussian(10)
	fermion.NewWilson(gauge, 0.2).ApplyDag(ref, src)
	got := lattice.NewFermionField(global)
	dec := sess.Lay.Dec
	err = sess.M.RunSPMD("dag-once", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, sess.Lay.Fold)
			gc := GridCoord(comm.Coord())
			dw := NewDistWilson(ctx, comm, dec, ScatterGauge(gauge, dec, gc), 0.2, fermion.Double)
			dst := lattice.NewFermionField(dec.Local)
			dw.ApplyDag(dst, ScatterFermion(src, dec, gc))
			GatherFermion(got, dec, gc, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := got.Clone()
	diff.AXPY(-1, ref)
	if diff.Norm2()/ref.Norm2() > 1e-24 {
		t.Fatal("distributed D† deviates from reference")
	}
}

// TestSolveWilsonEndToEnd: full distributed CG on a 16-node machine,
// verified against the true solution and the single-node solver.
func TestSolveWilsonEndToEnd(t *testing.T) {
	global := lattice.Shape4{4, 4, 4, 4}
	sess, err := NewSession(geom.MakeShape(2, 2, 2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(11)
	b := lattice.NewFermionField(global)
	b.Gaussian(12)
	mass := 0.5
	x, met, err := sess.SolveWilson(gauge, b, mass, fermion.Double, 1e-8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Verify D x = b directly with the reference operator.
	check := lattice.NewFermionField(global)
	fermion.NewWilson(gauge, mass).Apply(check, x)
	check.AXPY(-1, b)
	rel := math.Sqrt(check.Norm2() / b.Norm2())
	if rel > 1e-7 {
		t.Fatalf("distributed solution residual %g", rel)
	}
	if met.Iterations == 0 || met.SimTime <= 0 {
		t.Fatalf("metrics: %+v", met)
	}
	// The machine moved real halo data.
	if met.WordsSent == 0 {
		t.Fatal("no network traffic recorded")
	}
	// Efficiency should be in a physical range (comm-heavy at 2^4 local
	// volume, so below the 4^4 anchor but nonzero).
	if met.Efficiency <= 0.01 || met.Efficiency > 0.6 {
		t.Fatalf("efficiency = %v", met.Efficiency)
	}
	t.Logf("16-node Wilson CG: %d iters, simulated %v, %.1f Mflops/node (%.1f%% of peak)",
		met.Iterations, met.SimTime, met.SustainedPerNode/1e6, 100*met.Efficiency)

	// Cross-check: the single-node solver converges to the same solution.
	xRef := lattice.NewFermionField(global)
	if _, err := solver.SolveDirac(fermion.NewWilson(gauge, mass), xRef, b, 1e-8, 1000); err != nil {
		t.Fatal(err)
	}
	xRef.AXPY(-1, x)
	if xRef.Norm2()/x.Norm2() > 1e-12 {
		t.Fatalf("distributed and reference solutions differ: %g", xRef.Norm2()/x.Norm2())
	}
}

// TestSolveWilsonDeterministic re-runs a solve and requires identical
// bits — the machine-level half of experiment E10.
func TestSolveWilsonDeterministic(t *testing.T) {
	global := lattice.Shape4{4, 4, 2, 2}
	run := func() ([]byte, uint64) {
		sess, err := NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		gauge := lattice.NewGaugeField(global)
		gauge.Randomize(21)
		b := lattice.NewFermionField(global)
		b.Gaussian(22)
		x, met, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-10, 1000)
		if err != nil {
			t.Fatal(err)
		}
		// Serialize solution bits.
		buf := make([]byte, 0, len(x.S)*192)
		w := make([]uint64, 24)
		for i := range x.S {
			latmath.PackSpinor(x.S[i], w)
			for _, v := range w {
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
					byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
			}
		}
		return buf, met.WordsSent
	}
	a, wordsA := run()
	b, wordsB := run()
	if len(a) != len(b) {
		t.Fatal("solution sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("solutions differ at byte %d: re-run not bit-identical", i)
		}
	}
	if wordsA != wordsB {
		t.Fatalf("network word counts differ (%d vs %d): schedule not deterministic", wordsA, wordsB)
	}
}

// TestDistCloverMatchesReference validates the distributed clover
// operator against the single-node reference on a hot configuration.
func TestDistCloverMatchesReference(t *testing.T) {
	global := lattice.Shape4{4, 4, 2, 2}
	sess, err := NewSession(geom.MakeShape(2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(31)
	ref := fermion.NewClover(gauge, 0.2, 1.3)
	src := lattice.NewFermionField(global)
	src.Gaussian(32)
	want := lattice.NewFermionField(global)
	ref.Apply(want, src)
	got := lattice.NewFermionField(global)
	dec := sess.Lay.Dec
	err = sess.M.RunSPMD("clover-once", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, sess.Lay.Fold)
			gc := GridCoord(comm.Coord())
			dcv := NewDistClover(ctx, comm, dec, ScatterGauge(gauge, dec, gc), ref, fermion.Double)
			dst := lattice.NewFermionField(dec.Local)
			dcv.Apply(dst, ScatterFermion(src, dec, gc))
			GatherFermion(got, dec, gc, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := got.Clone()
	diff.AXPY(-1, want)
	if diff.Norm2()/want.Norm2() > 1e-24 {
		t.Fatalf("distributed clover deviates: %g", diff.Norm2()/want.Norm2())
	}
}

// TestDistASQTADMatchesReference validates the distributed ASQTAD
// operator (three-layer Naik halos, sender-applied backward links)
// against the single-node reference.
func TestDistASQTADMatchesReference(t *testing.T) {
	global := lattice.Shape4{8, 8, 4, 4} // local 4x4x4x4 on the 2x2 grid (Naik needs extent >= 3)
	sess, err := NewSession(geom.MakeShape(2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(41)
	ref := fermion.NewASQTAD(gauge, 0.25)
	src := lattice.NewColorField(global)
	src.Gaussian(42)
	want := lattice.NewColorField(global)
	ref.Apply(want, src)
	got := lattice.NewColorField(global)
	dec := sess.Lay.Dec
	err = sess.M.RunSPMD("asqtad-once", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, sess.Lay.Fold)
			gc := GridCoord(comm.Coord())
			da := NewDistASQTAD(ctx, comm, dec, ref, fermion.Double)
			dst := lattice.NewColorField(dec.Local)
			da.Apply(dst, ScatterColor(src, dec, gc))
			GatherColor(got, dec, gc, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := got.Clone()
	diff.AXPY(-1, want)
	if diff.Norm2()/want.Norm2() > 1e-24 {
		t.Fatalf("distributed ASQTAD deviates: %g", diff.Norm2()/want.Norm2())
	}
}

// TestDistDWFMatchesReference validates the distributed domain-wall
// operator against the single-node reference.
func TestDistDWFMatchesReference(t *testing.T) {
	global := lattice.Shape4{4, 4, 2, 2}
	const ls = 4
	sess, err := NewSession(geom.MakeShape(2, 2), global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(51)
	ref := fermion.NewDWF(gauge, 1.8, 0.05, ls)
	src := fermion.NewField5(global, ls)
	src.Gaussian(52)
	want := fermion.NewField5(global, ls)
	ref.Apply(want, src)
	got := fermion.NewField5(global, ls)
	dec := sess.Lay.Dec
	err = sess.M.RunSPMD("dwf-once", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, sess.Lay.Fold)
			gc := GridCoord(comm.Coord())
			dd := NewDistDWF(ctx, comm, dec, ScatterGauge(gauge, dec, gc), 1.8, 0.05, ls, fermion.Double)
			dst := fermion.NewField5(dec.Local, ls)
			dd.Apply(dst, scatterField5(src, dec, gc))
			gatherField5(got, dec, gc, dst)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := got.Clone()
	diff.AXPY(-1, want)
	if diff.Norm2()/want.Norm2() > 1e-24 {
		t.Fatalf("distributed DWF deviates: %g", diff.Norm2()/want.Norm2())
	}
}

// TestSolveAllOperatorsEndToEnd runs small distributed CG solves for
// clover, ASQTAD and DWF, verifying residuals with the reference
// operators.
func TestSolveAllOperatorsEndToEnd(t *testing.T) {
	global := lattice.Shape4{4, 4, 4, 4}
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(61)

	// Clover.
	{
		sess, err := NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			t.Fatal(err)
		}
		ref := fermion.NewClover(gauge, 0.5, 1.0)
		b := lattice.NewFermionField(global)
		b.Gaussian(62)
		x, met, err := sess.SolveClover(ref, b, fermion.Double, 1e-8, 1000)
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		chk := lattice.NewFermionField(global)
		ref.Apply(chk, x)
		chk.AXPY(-1, b)
		if r := math.Sqrt(chk.Norm2() / b.Norm2()); r > 1e-7 {
			t.Fatalf("clover residual %g", r)
		}
		if met.Efficiency <= 0 {
			t.Fatal("no clover efficiency recorded")
		}
	}
	// ASQTAD (larger global lattice: the Naik term needs local extent >= 3).
	{
		globalA := lattice.Shape4{8, 8, 4, 4}
		gaugeA := lattice.NewGaugeField(globalA)
		gaugeA.Randomize(61)
		sess, err := NewSession(geom.MakeShape(2, 2), globalA)
		if err != nil {
			t.Fatal(err)
		}
		ref := fermion.NewASQTAD(gaugeA, 0.5)
		b := lattice.NewColorField(globalA)
		b.Gaussian(63)
		x, met, err := sess.SolveASQTAD(ref, b, fermion.Double, 1e-8, 2000)
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		chk := lattice.NewColorField(globalA)
		ref.Apply(chk, x)
		chk.AXPY(-1, b)
		if r := math.Sqrt(chk.Norm2() / b.Norm2()); r > 1e-7 {
			t.Fatalf("asqtad residual %g", r)
		}
		if met.Iterations == 0 {
			t.Fatal("no asqtad iterations")
		}
	}
	// DWF.
	{
		const ls = 4
		sess, err := NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			t.Fatal(err)
		}
		ref := fermion.NewDWF(gauge, 1.8, 0.1, ls)
		b := fermion.NewField5(global, ls)
		b.Gaussian(64)
		x, met, err := sess.SolveDWF(gauge, b, 1.8, 0.1, ls, fermion.Double, 1e-8, 3000)
		sess.Close()
		if err != nil {
			t.Fatal(err)
		}
		chk := fermion.NewField5(global, ls)
		ref.Apply(chk, x)
		chk.AXPY(-1, b)
		if r := math.Sqrt(chk.Norm2() / b.Norm2()); r > 1e-7 {
			t.Fatalf("dwf residual %g", r)
		}
		if met.Efficiency <= 0 {
			t.Fatal("no dwf efficiency recorded")
		}
	}
}
