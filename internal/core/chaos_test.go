package core

import (
	"bytes"
	"errors"
	"testing"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/telemetry"
)

// chaosSoakSeed and chaosExhaustSeed are fault seeds chosen (and pinned
// by the assertions below) so the compound scenarios actually exercise
// the ladder: the soak seed corrupts the generation the second recovery
// wants, forcing a fallback; the exhaust seed's recovery crash lands on
// the last surviving board.
const (
	chaosSoakSeed    = 1
	chaosExhaustSeed = 16
)

// chaosConfig is the E16 scenario: an 8-node machine, a crash drawn to
// land mid-solve, management-network drop/dup noise during boot, and a
// transient link burst — all from one fault seed.
func chaosConfig(faultSeed uint64) ChaosConfig {
	return ChaosConfig{
		Shape:           geom.MakeShape(2, 2, 2),
		Global:          lattice.Shape4{4, 4, 4, 4},
		Seed:            4001,
		FaultSeed:       faultSeed,
		Mass:            0.5,
		Tol:             1e-8,
		MaxIter:         400,
		CheckpointEvery: 10,
		Heartbeat:       100 * event.Microsecond,
		Watchdog:        qdaemon.WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3},
		Spec: faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		},
	}
}

// TestChaosWilsonSurvivesNodeDeath drives the full recovery loop:
// inject -> detect -> isolate -> restore -> converge, twice, and pins
// bit-identical outcome digests (recovery-event timing included).
func TestChaosWilsonSurvivesNodeDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	run := func() *ChaosOutcome {
		out, err := RunChaosWilson(chaosConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	o1 := run()
	o2 := run()

	if !o1.Converged {
		t.Fatal("chaos run did not converge")
	}
	if len(o1.Attempts) < 2 {
		t.Fatalf("%d attempts, want a restart", len(o1.Attempts))
	}
	first, last := o1.Attempts[0], o1.Attempts[len(o1.Attempts)-1]
	if !first.Aborted {
		t.Fatalf("first attempt not aborted: %s", first)
	}
	if first.Failure.DetectLatency <= 0 {
		t.Fatalf("no detection latency recorded: %+v", first.Failure)
	}
	if last.Nodes >= first.Nodes {
		t.Fatalf("no repartition: %d -> %d nodes", first.Nodes, last.Nodes)
	}
	if last.RestoredIter <= 0 {
		t.Fatalf("restart did not restore a checkpoint: %s", last)
	}
	if !last.Converged {
		t.Fatalf("final attempt did not converge: %s", last)
	}
	if o1.Digest != o2.Digest {
		t.Fatalf("chaos digests diverged: %#x vs %#x\nrun1: %+v\nrun2: %+v",
			o1.Digest, o2.Digest, o1.Attempts, o2.Attempts)
	}
	if o1.SolutionCRC != o2.SolutionCRC {
		t.Fatalf("solution CRCs diverged: %#x vs %#x", o1.SolutionCRC, o2.SolutionCRC)
	}
}

// A clean plan (no faults) must converge in one attempt — the chaos
// harness itself adds no failure modes.
func TestChaosWilsonNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	cfg := chaosConfig(1)
	cfg.Spec = faultplan.Spec{}
	out, err := RunChaosWilson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attempts) != 1 || !out.Converged || out.Attempts[0].Aborted {
		t.Fatalf("clean run: %+v", out.Attempts)
	}
}

// soakChaosConfig is the -soak compound scenario: a first-order death
// plus second-order and storage-plane faults, with attempt headroom for
// the ladder to climb (mirrored by the qcdoc chaos -soak preset).
func soakChaosConfig(faultSeed uint64) ChaosConfig {
	cfg := chaosConfig(faultSeed)
	cfg.MaxAttempts = 6
	cfg.Spec.ChunkCorrupts = 2
	cfg.Spec.ChunkTorns = 1
	cfg.Spec.WatchdogFalsePositives = 1
	cfg.Spec.RecoveryCrashes = 1
	return cfg
}

func hasRung(out *ChaosOutcome, kind RungKind) bool {
	for _, r := range out.Rungs {
		if r.Kind == kind {
			return true
		}
	}
	return false
}

// The supervisor's restore ladder, unit-tested against a fabricated
// host FS: newest generation first, chunk retries then generation
// fallback on corruption, typed exhaustion when every generation is
// bad, cold start only when nothing was ever sealed.
func TestSupervisorRestoreLadder(t *testing.T) {
	global := lattice.Shape4{4, 2, 2, 2}
	sh := geom.MakeShape(2)
	lay, err := NewLayout(sh, global)
	if err != nil {
		t.Fatal(err)
	}
	src := lattice.NewFermionField(global)
	src.Gaussian(3)
	fs := map[string][]byte{}
	writeGen := func(attempt, iter int) {
		for rank := 0; rank < sh.Volume(); rank++ {
			gc := GridCoord(lay.Fold.ToLogical(sh.CoordOf(rank)))
			local := ScatterFermion(src, lay.Dec, gc)
			var buf bytes.Buffer
			if err := checkpoint.WriteSolverState(&buf, local, uint32(iter)); err != nil {
				t.Fatal(err)
			}
			fs[chunkName(attempt, iter, rank)] = buf.Bytes()
		}
	}
	logf := func(string, ...any) {}
	past := []attemptLayout{{shape: sh, lay: lay}}
	restore := func(sup *supervisor) (int, error) {
		var iter int
		var rerr error
		eng := event.New()
		sup.beginAttempt(telemetry.New())
		eng.Spawn("restore", func(p *event.Proc) {
			_, iter, rerr = sup.restore(p, 1, past)
		})
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		eng.Shutdown()
		return iter, rerr
	}

	// Two clean generations: restore picks the newest.
	writeGen(0, 10)
	writeGen(0, 20)
	sup := newSupervisor(RecoveryConfig{}, fs, global, logf)
	iter, rerr := restore(sup)
	if rerr != nil || iter != 20 {
		t.Fatalf("clean restore: iter %d err %v, want 20", iter, rerr)
	}
	if len(sup.rungs) != 0 {
		t.Fatalf("clean restore climbed rungs: %v", sup.rungs)
	}

	// Corrupt the newest generation after sealing: the manifest CRC
	// convicts it, retries burn out, restore falls back one generation.
	fs[chunkName(0, 20, 0)][100] ^= 0x04
	iter, rerr = restore(sup)
	if rerr != nil || iter != 10 {
		t.Fatalf("fallback restore: iter %d err %v, want 10", iter, rerr)
	}
	if sup.stats.ChunkRetries == 0 || sup.stats.GenerationFallbacks != 1 {
		t.Fatalf("ladder stats %+v, want retries and exactly one fallback", sup.stats)
	}
	hasRetry, hasFallback := false, false
	for _, r := range sup.rungs {
		hasRetry = hasRetry || r.Kind == RungChunkRetry
		hasFallback = hasFallback || r.Kind == RungGenerationFallback
	}
	if !hasRetry || !hasFallback {
		t.Fatalf("rungs %v, want chunk-retry and generation-fallback", sup.rungs)
	}

	// Tear the older generation too: every retained generation is bad
	// and the ladder ends in the typed error, not a silent cold start.
	fs[chunkName(0, 10, 1)] = fs[chunkName(0, 10, 1)][:13]
	if _, rerr = restore(sup); !errors.Is(rerr, ErrCheckpointUnrecoverable) {
		t.Fatalf("exhausted ladder returned %v, want ErrCheckpointUnrecoverable", rerr)
	}

	// Nothing ever sealed: cold start at iteration 0 is the legal floor.
	cold := newSupervisor(RecoveryConfig{}, map[string][]byte{}, global, logf)
	iter, rerr = restore(cold)
	if rerr != nil || iter != 0 {
		t.Fatalf("cold start: iter %d err %v", iter, rerr)
	}
	if !hasRung(&ChaosOutcome{Rungs: cold.rungs}, RungColdStart) {
		t.Fatalf("cold start not recorded: %v", cold.rungs)
	}
}

// The host-plane fault surface: chunk strikes hit the newest chunk of
// the victim rank, misses report false.
func TestChaosHostChunkFaults(t *testing.T) {
	fs := map[string][]byte{
		chunkName(0, 10, 0): bytes.Repeat([]byte{0xAA}, 64),
		chunkName(0, 20, 0): bytes.Repeat([]byte{0xBB}, 64),
		chunkName(1, 5, 1):  bytes.Repeat([]byte{0xCC}, 64),
	}
	h := &chaosHost{fs: fs}
	if got := newestChunk(fs, 0); got != chunkName(0, 20, 0) {
		t.Fatalf("newest chunk of rank 0: %q", got)
	}
	if got := newestChunk(fs, 1); got != chunkName(1, 5, 1) {
		t.Fatalf("newest chunk of rank 1: %q", got)
	}
	if !h.CorruptChunk(0, 77) {
		t.Fatal("corrupt strike missed an existing chunk")
	}
	if bytes.Equal(fs[chunkName(0, 20, 0)], bytes.Repeat([]byte{0xBB}, 64)) {
		t.Fatal("corrupt strike left the newest chunk untouched")
	}
	if len(fs[chunkName(0, 20, 0)]) != 64 {
		t.Fatal("corrupt strike changed the chunk length")
	}
	if !h.TearChunk(1, 200) {
		t.Fatal("tear strike missed an existing chunk")
	}
	if n := len(fs[chunkName(1, 5, 1)]); n >= 64 || n < 1 {
		t.Fatalf("torn chunk length %d, want in [1,63]", n)
	}
	if h.CorruptChunk(5, 1) || h.TearChunk(5, 1) {
		t.Fatal("strike on a rank with no chunks reported a hit")
	}
}

// The compound soak scenario: first-order death, storage corruption,
// a spurious death report, and a second death during recovery. The run
// must survive by climbing the ladder — and two runs, serial and
// 8-worker, must agree on every rung to the picosecond.
func TestChaosSoakCompound(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak run")
	}
	run := func(workers int) *ChaosOutcome {
		cfg := soakChaosConfig(chaosSoakSeed)
		if workers > 0 {
			cfg.Shards = machine.ShardAuto
			cfg.Workers = workers
		}
		out, err := RunChaosWilson(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v\nrungs: %v", workers, err, out.Rungs)
		}
		return out
	}
	o1 := run(0)
	o2 := run(0)
	o8 := run(8)

	if !o1.Converged {
		t.Fatal("soak run did not converge")
	}
	if len(o1.Attempts) < 3 {
		t.Fatalf("%d attempts, want at least 3 (two deaths)", len(o1.Attempts))
	}
	first, last := o1.Attempts[0], o1.Attempts[len(o1.Attempts)-1]
	if last.Nodes >= first.Nodes/2 {
		t.Fatalf("no cumulative shrink: %d -> %d nodes", first.Nodes, last.Nodes)
	}
	if !hasRung(o1, RungRepartition) {
		t.Fatalf("no repartition rung: %v", o1.Rungs)
	}
	if !hasRung(o1, RungGenerationFallback) {
		t.Fatalf("no generation fallback climbed: %v", o1.Rungs)
	}
	if !hasRung(o1, RungFalsePositive) {
		t.Fatalf("no false positive rejected: %v", o1.Rungs)
	}
	if o1.Digest != o2.Digest {
		t.Fatalf("soak digests diverged across runs: %#x vs %#x", o1.Digest, o2.Digest)
	}
	if o1.Digest != o8.Digest {
		t.Fatalf("soak digest not worker-invariant: serial %#x vs 8 workers %#x\nserial rungs: %v\nworker rungs: %v",
			o1.Digest, o8.Digest, o1.Rungs, o8.Rungs)
	}

	// A fully observed run must surface the supervisor's ladder
	// histograms in the merged telemetry — and must not perturb the
	// digest by a bit (the zero-perturbation contract, DESIGN.md §15).
	cfgT := soakChaosConfig(chaosSoakSeed)
	cfgT.Telemetry = true
	oT, err := RunChaosWilson(cfgT)
	if err != nil {
		t.Fatal(err)
	}
	if oT.Digest != o1.Digest {
		t.Fatalf("telemetry perturbed the soak digest: dark %#x vs observed %#x", o1.Digest, oT.Digest)
	}
	if h, ok := oT.Hists["recovery/backoff_wait_ps"]; !ok || h.Count == 0 {
		t.Fatalf("no backoff waits in merged telemetry: %v", oT.Hists["recovery/backoff_wait_ps"])
	}
	if h, ok := oT.Hists["recovery/generation_fallback_depth"]; !ok || h.Count == 0 {
		t.Fatalf("no fallback depths in merged telemetry: %v", oT.Hists["recovery/generation_fallback_depth"])
	}
}

// Exhausting the partition: a 4-node machine loses a board, recovers on
// 2 nodes, loses the last board to a recovery crash — the ladder ends
// in ErrPartitionExhausted, typed, deterministic, never a hang.
func TestChaosPartitionExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	run := func() (*ChaosOutcome, error) {
		cfg := chaosConfig(chaosExhaustSeed)
		cfg.Shape = geom.MakeShape(2, 2)
		cfg.MaxAttempts = 6
		cfg.Spec.RecoveryCrashes = 1
		return RunChaosWilson(cfg)
	}
	o1, err1 := run()
	o2, err2 := run()
	if !errors.Is(err1, ErrPartitionExhausted) {
		t.Fatalf("exhausted run returned %v, want ErrPartitionExhausted\nrungs: %v", err1, o1.Rungs)
	}
	if o1.Converged {
		t.Fatal("exhausted run claims convergence")
	}
	if n := len(o1.Attempts); n < 2 {
		t.Fatalf("%d attempts before exhaustion, want at least 2", n)
	}
	if o1.Digest == 0 || o1.Digest != o2.Digest {
		t.Fatalf("failing runs must stay deterministic: %#x vs %#x (err2 %v)", o1.Digest, o2.Digest, err2)
	}
}
