package core

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/qdaemon"
)

// chaosConfig is the E16 scenario: an 8-node machine, a crash drawn to
// land mid-solve, management-network drop/dup noise during boot, and a
// transient link burst — all from one fault seed.
func chaosConfig(faultSeed uint64) ChaosConfig {
	return ChaosConfig{
		Shape:           geom.MakeShape(2, 2, 2),
		Global:          lattice.Shape4{4, 4, 4, 4},
		Seed:            4001,
		FaultSeed:       faultSeed,
		Mass:            0.5,
		Tol:             1e-8,
		MaxIter:         400,
		CheckpointEvery: 10,
		Heartbeat:       100 * event.Microsecond,
		Watchdog:        qdaemon.WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3},
		Spec: faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		},
	}
}

// TestChaosWilsonSurvivesNodeDeath drives the full recovery loop:
// inject -> detect -> isolate -> restore -> converge, twice, and pins
// bit-identical outcome digests (recovery-event timing included).
func TestChaosWilsonSurvivesNodeDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	run := func() *ChaosOutcome {
		out, err := RunChaosWilson(chaosConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	o1 := run()
	o2 := run()

	if !o1.Converged {
		t.Fatal("chaos run did not converge")
	}
	if len(o1.Attempts) < 2 {
		t.Fatalf("%d attempts, want a restart", len(o1.Attempts))
	}
	first, last := o1.Attempts[0], o1.Attempts[len(o1.Attempts)-1]
	if !first.Aborted {
		t.Fatalf("first attempt not aborted: %s", first)
	}
	if first.Failure.DetectLatency <= 0 {
		t.Fatalf("no detection latency recorded: %+v", first.Failure)
	}
	if last.Nodes >= first.Nodes {
		t.Fatalf("no repartition: %d -> %d nodes", first.Nodes, last.Nodes)
	}
	if last.RestoredIter <= 0 {
		t.Fatalf("restart did not restore a checkpoint: %s", last)
	}
	if !last.Converged {
		t.Fatalf("final attempt did not converge: %s", last)
	}
	if o1.Digest != o2.Digest {
		t.Fatalf("chaos digests diverged: %#x vs %#x\nrun1: %+v\nrun2: %+v",
			o1.Digest, o2.Digest, o1.Attempts, o2.Attempts)
	}
	if o1.SolutionCRC != o2.SolutionCRC {
		t.Fatalf("solution CRCs diverged: %#x vs %#x", o1.SolutionCRC, o2.SolutionCRC)
	}
}

// A clean plan (no faults) must converge in one attempt — the chaos
// harness itself adds no failure modes.
func TestChaosWilsonNoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run")
	}
	cfg := chaosConfig(1)
	cfg.Spec = faultplan.Spec{}
	out, err := RunChaosWilson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Attempts) != 1 || !out.Converged || out.Attempts[0].Aborted {
		t.Fatalf("clean run: %+v", out.Attempts)
	}
}
