package core

import (
	"fmt"

	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/solver"
)

// SolveClover runs a distributed CGNE solve of the clover-improved
// operator. ref is the clover operator built on the global gauge field
// (the clover term is a per-configuration precomputation).
func (s *Session) SolveClover(ref *fermion.Clover, b *lattice.FermionField, prec fermion.Precision, tol float64, maxIter int) (*lattice.FermionField, SolveMetrics, error) {
	dec := s.Lay.Dec
	if ref.G.L != dec.Global || b.L != dec.Global {
		return nil, SolveMetrics{}, fmt.Errorf("core: field shape mismatch")
	}
	solution := lattice.NewFermionField(dec.Global)
	var met SolveMetrics
	errs := make([]error, s.M.NumNodes())
	start := s.Eng.Now()
	runErr := s.M.RunSPMD("clover-cg", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, s.Lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(ref.G, dec, gc)
			dc := NewDistClover(ctx, comm, dec, localG, ref, prec)
			ss := DistSpace(ctx, comm, dec, fermion.CloverKind, prec)
			x := lattice.NewFermionField(dec.Local)
			res, err := solver.CGNE(distSpinorSpace(ss), dc.Apply, dc.ApplyDag, x, ScatterFermion(b, dec, gc), tol, maxIter)
			errs[rank] = err
			GatherFermion(solution, dec, gc, x)
			if rank == 0 {
				met.Iterations = res.Iterations
				met.Applications = res.Applications
				met.RelResidual = res.RelResidual
			}
		}
	})
	if runErr != nil {
		return nil, met, runErr
	}
	if err := firstOf(errs); err != nil {
		return solution, met, err
	}
	met.SimTime = s.Eng.Now() - start
	s.fillMetrics(&met, fermion.CloverKind, 1)
	if _, err := s.M.VerifyChecksums(); err != nil {
		return solution, met, err
	}
	return solution, met, nil
}

// SolveASQTAD runs a distributed CGNE solve of the ASQTAD staggered
// operator. ref carries the globally precomputed fat and long links.
func (s *Session) SolveASQTAD(ref *fermion.ASQTAD, b *lattice.ColorField, prec fermion.Precision, tol float64, maxIter int) (*lattice.ColorField, SolveMetrics, error) {
	dec := s.Lay.Dec
	if ref.G.L != dec.Global || b.L != dec.Global {
		return nil, SolveMetrics{}, fmt.Errorf("core: field shape mismatch")
	}
	solution := lattice.NewColorField(dec.Global)
	var met SolveMetrics
	errs := make([]error, s.M.NumNodes())
	start := s.Eng.Now()
	runErr := s.M.RunSPMD("asqtad-cg", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, s.Lay.Fold)
			gc := GridCoord(comm.Coord())
			da := NewDistASQTAD(ctx, comm, dec, ref, prec)
			ss := DistSpace(ctx, comm, dec, fermion.AsqtadKind, prec)
			x := lattice.NewColorField(dec.Local)
			res, err := solver.CGNE(distColorSpace(ss), da.Apply, da.ApplyDag, x, ScatterColor(b, dec, gc), tol, maxIter)
			errs[rank] = err
			GatherColor(solution, dec, gc, x)
			if rank == 0 {
				met.Iterations = res.Iterations
				met.Applications = res.Applications
				met.RelResidual = res.RelResidual
			}
		}
	})
	if runErr != nil {
		return nil, met, runErr
	}
	if err := firstOf(errs); err != nil {
		return solution, met, err
	}
	met.SimTime = s.Eng.Now() - start
	s.fillMetrics(&met, fermion.AsqtadKind, 1)
	if _, err := s.M.VerifyChecksums(); err != nil {
		return solution, met, err
	}
	return solution, met, nil
}

// SolveDWF runs a distributed CGNE solve of the domain-wall operator.
func (s *Session) SolveDWF(gauge *lattice.GaugeField, b *fermion.Field5, m5, mf float64, ls int, prec fermion.Precision, tol float64, maxIter int) (*fermion.Field5, SolveMetrics, error) {
	dec := s.Lay.Dec
	if gauge.L != dec.Global || b.L != dec.Global || b.Ls != ls {
		return nil, SolveMetrics{}, fmt.Errorf("core: field shape mismatch")
	}
	solution := fermion.NewField5(dec.Global, ls)
	var met SolveMetrics
	errs := make([]error, s.M.NumNodes())
	start := s.Eng.Now()
	runErr := s.M.RunSPMD("dwf-cg", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, s.Lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(gauge, dec, gc)
			dd := NewDistDWF(ctx, comm, dec, localG, m5, mf, ls, prec)
			ss := DistSpace(ctx, comm, dec, fermion.DWFKind, prec)
			// Linalg charges for DWF scale with Ls slices.
			ss.axpyCharge = ss.axpyCharge.Scale(float64(ls))
			ss.dotCharge = ss.dotCharge.Scale(float64(ls))
			x := fermion.NewField5(dec.Local, ls)
			res, err := solver.CGNE(distField5Space(ss, ls), dd.Apply, dd.ApplyDag, x, scatterField5(b, dec, gc), tol, maxIter)
			errs[rank] = err
			gatherField5(solution, dec, gc, x)
			if rank == 0 {
				met.Iterations = res.Iterations
				met.Applications = res.Applications
				met.RelResidual = res.RelResidual
			}
		}
	})
	if runErr != nil {
		return nil, met, runErr
	}
	if err := firstOf(errs); err != nil {
		return solution, met, err
	}
	met.SimTime = s.Eng.Now() - start
	s.fillMetrics(&met, fermion.DWFKind, ls)
	if _, err := s.M.VerifyChecksums(); err != nil {
		return solution, met, err
	}
	return solution, met, nil
}

// distColorSpace adapts solverSpace to staggered color fields.
func distColorSpace(ss solverSpace) solver.Space[*lattice.ColorField] {
	return solver.Space[*lattice.ColorField]{
		New:  func() *lattice.ColorField { return lattice.NewColorField(ss.local) },
		Copy: func(dst, src *lattice.ColorField) { copy(dst.V, src.V) },
		Dot: func(a, b *lattice.ColorField) complex128 {
			local := a.Dot(b)
			re := ss.globalSum(real(local))
			im := ss.globalSum(imag(local))
			return complex(re, im)
		},
		Norm2: func(a *lattice.ColorField) float64 { return ss.globalSum(a.Norm2()) },
		AXPY: func(y *lattice.ColorField, a complex128, x *lattice.ColorField) {
			ss.chargeAXPY()
			y.AXPY(a, x)
		},
		Scale: func(x *lattice.ColorField, a complex128) {
			ss.chargeAXPY()
			x.Scale(a)
		},
		OnIteration: ss.noteIteration,
	}
}

// distField5Space adapts solverSpace to 5-D fields.
func distField5Space(ss solverSpace, ls int) solver.Space[*fermion.Field5] {
	return solver.Space[*fermion.Field5]{
		New:  func() *fermion.Field5 { return fermion.NewField5(ss.local, ls) },
		Copy: func(dst, src *fermion.Field5) { copy(dst.S, src.S) },
		Dot: func(a, b *fermion.Field5) complex128 {
			local := a.Dot(b)
			re := ss.globalSum(real(local))
			im := ss.globalSum(imag(local))
			return complex(re, im)
		},
		Norm2: func(a *fermion.Field5) float64 { return ss.globalSum(a.Norm2()) },
		AXPY: func(y *fermion.Field5, a complex128, x *fermion.Field5) {
			ss.chargeAXPY()
			y.AXPY(a, x)
		},
		Scale: func(x *fermion.Field5, a complex128) {
			ss.chargeAXPY()
			x.Scale(a)
		},
		OnIteration: ss.noteIteration,
	}
}

// scatterField5 extracts a node's local 5-D field.
func scatterField5(global *fermion.Field5, dec lattice.Decomp, gc lattice.Site) *fermion.Field5 {
	local := fermion.NewField5(dec.Local, global.Ls)
	v4l := dec.Local.Volume()
	v4g := dec.Global.Volume()
	for s := 0; s < global.Ls; s++ {
		for idx := 0; idx < v4l; idx++ {
			gs := dec.GlobalOf(gc, dec.Local.SiteOf(idx))
			local.S[s*v4l+idx] = global.S[s*v4g+dec.Global.Index(gs)]
		}
	}
	return local
}

// gatherField5 writes a node's local 5-D field into the global one.
func gatherField5(global *fermion.Field5, dec lattice.Decomp, gc lattice.Site, local *fermion.Field5) {
	v4l := dec.Local.Volume()
	v4g := dec.Global.Volume()
	for s := 0; s < local.Ls; s++ {
		for idx := 0; idx < v4l; idx++ {
			gs := dec.GlobalOf(gc, dec.Local.SiteOf(idx))
			global.S[s*v4g+dec.Global.Index(gs)] = local.S[s*v4l+idx]
		}
	}
}
