package core

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/node"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// DistWilson is the distributed Wilson Dirac operator running on one
// node of the machine. Boundary spin-projected half spinors travel
// through the SCU as in the hand-tuned production code: the low face is
// projected with (1-γ_mu) and sent backward (the receiver applies its
// own gauge link); the high face is projected with (1+γ_mu), multiplied
// by U†, and sent forward (the sender applies the link). Twelve complex
// numbers per face site per direction — exactly the cost model's comm
// volume.
//
// While the real data moves, the node's CPU model is charged the
// operator's per-site kernel cost, so simulated time reflects both
// compute and communication, overlapped as on the real machine (the DMA
// engines run while the CPU works the volume).
type DistWilson struct {
	ctx  *node.Ctx
	comm *qmp.Comm
	dec  lattice.Decomp
	grid lattice.Site
	G    *lattice.GaugeField
	Mass float64

	// Timing.
	siteCost ppc440.KernelCost
	timing   bool

	// Per (mu, end) comm plumbing: face site lists and node-memory
	// buffers (12 words per face site).
	faces    [lattice.Ndim][2][]int
	sendAddr [lattice.Ndim][2]uint64
	recvAddr [lattice.Ndim][2]uint64

	// Unpacked ghosts.
	ghostFwd [lattice.Ndim][]latmath.HalfSpinor // ψ(x+mu) projected (1-γ), link applied by us
	ghostBwd [lattice.Ndim][]latmath.HalfSpinor // U†(1+γ)ψ(x-mu), link applied by sender
}

// NewDistWilson builds the operator on one node. localGauge is the
// node's sub-volume of the configuration (normally produced by
// ScatterGauge).
func NewDistWilson(ctx *node.Ctx, comm *qmp.Comm, dec lattice.Decomp, localGauge *lattice.GaugeField, mass float64, prec fermion.Precision) *DistWilson {
	d := &DistWilson{
		ctx:  ctx,
		comm: comm,
		dec:  dec,
		grid: GridCoord(comm.Coord()),
		G:    localGauge,
		Mass: mass,
	}
	if localGauge.L != dec.Local {
		panic(fmt.Sprintf("core: local gauge %v does not match decomposition %v", localGauge.L, dec.Local))
	}
	level := fermion.WorkingSetLevel(fermion.WilsonKind, prec, dec.LocalVolume())
	d.siteCost = fermion.SiteCost(fermion.WilsonKind, prec, level)
	d.timing = true
	for mu := 0; mu < lattice.Ndim; mu++ {
		if dec.Grid[mu] == 1 {
			continue
		}
		fv := lattice.FaceVolume(dec.Local, mu)
		words := fv * latmath.HalfSpinorWords
		for end := 0; end < 2; end++ {
			d.faces[mu][end] = lattice.FaceSites(dec.Local, mu, end)
			d.sendAddr[mu][end] = ctx.N.AllocWords(words)
			d.recvAddr[mu][end] = ctx.N.AllocWords(words)
		}
		d.ghostFwd[mu] = make([]latmath.HalfSpinor, fv)
		d.ghostBwd[mu] = make([]latmath.HalfSpinor, fv)
	}
	return d
}

// SetTiming enables or disables charging the CPU model (packing-only
// verification runs disable it).
func (d *DistWilson) SetTiming(on bool) { d.timing = on }

// Name implements a DiracOperator-like interface for logging.
func (d *DistWilson) Name() string { return "dist-wilson" }

// ghostIndex maps a local face-site index (its position in the sorted
// FaceSites list) — the packing order shared by sender and receiver.

// exchangeHalos projects and ships all boundary faces, overlapping the
// transfers with the bulk compute charge, then unpacks the ghosts.
func (d *DistWilson) exchangeHalos(src *lattice.FermionField, computeCharge ppc440.KernelCost) {
	p := d.ctx.P
	n := d.ctx.N
	var transfers []*scu.Transfer
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		// Receives first (idle receive would hold data anyway, but
		// programming them early gives the zero-copy landing).
		fv := len(d.faces[mu][0])
		words := fv * latmath.HalfSpinorWords
		rtF, err := d.comm.StartRecv(mu, geom.Fwd, scu.Contiguous(d.recvAddr[mu][1], words))
		check(err)
		rtB, err := d.comm.StartRecv(mu, geom.Bwd, scu.Contiguous(d.recvAddr[mu][0], words))
		check(err)
		transfers = append(transfers, rtF, rtB)

		// Low face: project (1-γ_mu)ψ, receiver applies its U.
		var buf [latmath.HalfSpinorWords]uint64
		for i, idx := range d.faces[mu][0] {
			h := latmath.Project(mu, +1, src.S[idx])
			latmath.PackHalfSpinor(h, buf[:])
			base := d.sendAddr[mu][0] + 8*uint64(i*latmath.HalfSpinorWords)
			for k, w := range buf {
				n.Mem.WriteWord(base+8*uint64(k), w)
			}
		}
		stB, err := d.comm.StartSend(mu, geom.Bwd, scu.Contiguous(d.sendAddr[mu][0], words))
		check(err)
		// High face: project (1+γ_mu)ψ and apply U† here (the sender owns
		// the link U_mu(x) for x on the high face).
		for i, idx := range d.faces[mu][1] {
			x := d.dec.Local.SiteOf(idx)
			h := latmath.Project(mu, -1, src.S[idx]).DagMulMat(d.G.Link(x, mu))
			latmath.PackHalfSpinor(h, buf[:])
			base := d.sendAddr[mu][1] + 8*uint64(i*latmath.HalfSpinorWords)
			for k, w := range buf {
				n.Mem.WriteWord(base+8*uint64(k), w)
			}
		}
		stF, err := d.comm.StartSend(mu, geom.Fwd, scu.Contiguous(d.sendAddr[mu][1], words))
		check(err)
		transfers = append(transfers, stB, stF)
	}
	// Overlap: the CPU works the volume while the DMA engines move the
	// faces.
	if d.timing {
		n.Compute(p, computeCharge)
	}
	qmp.WaitAll(p, transfers...)
	// Unpack ghosts.
	var buf [latmath.HalfSpinorWords]uint64
	for mu := 0; mu < lattice.Ndim; mu++ {
		if d.dec.Grid[mu] == 1 {
			continue
		}
		for i := range d.ghostFwd[mu] {
			base := d.recvAddr[mu][1] + 8*uint64(i*latmath.HalfSpinorWords)
			for k := range buf {
				buf[k] = n.Mem.ReadWord(base + 8*uint64(k))
			}
			d.ghostFwd[mu][i] = latmath.UnpackHalfSpinor(buf[:])
			base = d.recvAddr[mu][0] + 8*uint64(i*latmath.HalfSpinorWords)
			for k := range buf {
				buf[k] = n.Mem.ReadWord(base + 8*uint64(k))
			}
			d.ghostBwd[mu][i] = latmath.UnpackHalfSpinor(buf[:])
		}
	}
}

// facePos returns the position of local face site idx in the packing
// order, or -1. faces lists are ascending, so binary search.
func facePos(faces []int, idx int) int {
	lo, hi := 0, len(faces)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case faces[mid] == idx:
			return mid
		case faces[mid] < idx:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return -1
}

// Apply computes dst = D src with halo exchange over the machine.
func (d *DistWilson) Apply(dst, src *lattice.FermionField) {
	l := d.dec.Local
	charge := d.siteCost.Scale(float64(l.Volume()))
	d.exchangeHalos(src, charge)
	diag := complex(d.Mass+4, 0)
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		var acc latmath.Spinor
		for mu := 0; mu < lattice.Ndim; mu++ {
			// +mu term: (1-γ)U_mu(x)ψ(x+mu).
			if d.dec.Grid[mu] > 1 && x[mu] == l[mu]-1 {
				pos := facePos(d.faces[mu][1], idx)
				h := d.ghostFwd[mu][pos].MulMat(d.G.Link(x, mu))
				acc = acc.Add(latmath.Reconstruct(mu, +1, h))
			} else {
				xp := l.Neighbor(x, mu, +1)
				h := latmath.Project(mu, +1, src.S[l.Index(xp)]).MulMat(d.G.Link(x, mu))
				acc = acc.Add(latmath.Reconstruct(mu, +1, h))
			}
			// -mu term: (1+γ)U†_mu(x-mu)ψ(x-mu).
			if d.dec.Grid[mu] > 1 && x[mu] == 0 {
				pos := facePos(d.faces[mu][0], idx)
				h := d.ghostBwd[mu][pos] // link already applied by sender
				acc = acc.Add(latmath.Reconstruct(mu, -1, h))
			} else {
				xm := l.Neighbor(x, mu, -1)
				h := latmath.Project(mu, -1, src.S[l.Index(xm)]).DagMulMat(d.G.Link(xm, mu))
				acc = acc.Add(latmath.Reconstruct(mu, -1, h))
			}
		}
		dst.S[idx] = src.S[idx].Scale(diag).Sub(acc.Scale(0.5))
	}
}

// ApplyDag computes dst = D† src = γ5 D γ5 src.
func (d *DistWilson) ApplyDag(dst, src *lattice.FermionField) {
	l := d.dec.Local
	tmp := lattice.NewFermionField(l)
	for i := range src.S {
		tmp.S[i] = latmath.Gamma5.ApplySpin(src.S[i])
	}
	mid := lattice.NewFermionField(l)
	d.Apply(mid, tmp)
	for i := range mid.S {
		dst.S[i] = latmath.Gamma5.ApplySpin(mid.S[i])
	}
}

// DistSpace is the solver vector space for distributed spinor fields:
// local BLAS plus machine-wide reductions through the SCU global-sum
// hardware, each charged to the CPU model.
func DistSpace(ctx *node.Ctx, comm *qmp.Comm, dec lattice.Decomp, kind fermion.OpKind, prec fermion.Precision) solverSpace {
	level := fermion.WorkingSetLevel(kind, prec, dec.LocalVolume())
	axpyCharge := fermion.AXPYCost(kind, prec, level).Scale(float64(dec.LocalVolume()))
	dotCharge := fermion.DotCost(kind, prec, level).Scale(float64(dec.LocalVolume()))
	return solverSpace{
		ctx:        ctx,
		comm:       comm,
		local:      dec.Local,
		axpyCharge: axpyCharge,
		dotCharge:  dotCharge,
		iterAt:     new(event.Time),
	}
}

// solverSpace carries the shared pieces; concrete Space[T] adapters are
// built in session.go.
type solverSpace struct {
	ctx        *node.Ctx
	comm       *qmp.Comm
	local      lattice.Shape4
	axpyCharge ppc440.KernelCost
	dotCharge  ppc440.KernelCost
	// iterAt remembers (through the value-type copies the Space adapters
	// make) the simulated time of the previous iteration hook, so
	// noteIteration can histogram per-iteration sim time.
	iterAt *event.Time
}

func (s solverSpace) globalSum(x float64) float64 {
	s.ctx.N.Compute(s.ctx.P, s.dotCharge)
	return s.comm.GlobalSumFloat64(s.ctx.P, x)
}

func (s solverSpace) chargeAXPY() {
	s.ctx.N.Compute(s.ctx.P, s.axpyCharge)
}

// noteIteration feeds the solver's per-iteration hook into the node's
// telemetry counters (no-op with telemetry disabled): the iteration
// count, and the simulated time since the previous iteration into the
// CG-iteration histogram.
func (s solverSpace) noteIteration() {
	ctr := s.ctx.N.Counters()
	if ctr == nil {
		return
	}
	ctr.SolverIterations++
	now := s.ctx.P.Now()
	if s.iterAt != nil {
		if *s.iterAt != 0 {
			ctr.IterTime.Record(uint64(now - *s.iterAt))
		}
		*s.iterAt = now
	}
}

func check(err error) {
	if err != nil {
		panic("core: " + err.Error())
	}
}
