package core

// The recovery supervisor: the escalation ladder a chaos run climbs
// when faults compound (DESIGN.md §16). One rung at a time:
//
//  1. chunk-read retry — a checkpoint chunk that fails validation is
//     re-read under a deterministic sim-time backoff budget (the same
//     bounded-attempts/doubling-backoff policy the qdaemon's exchange()
//     applies to lost datagrams, applied to the host RAID);
//  2. generation fallback — when the newest complete checkpoint
//     generation stays invalid (corrupt, torn), restore falls back to
//     the next older one; the host keeps K generations, indexed by a
//     CRC-validated manifest (internal/checkpoint);
//  3. re-detection — a fault landing mid-recovery (a second death
//     while the partition is still re-forming) is picked up before the
//     job relaunches and re-enters detection/isolation;
//  4. repartition — cumulative FRU loss shrinks the job to the next
//     LargestPow2Partition;
//  5. typed failure — only when the ladder is exhausted:
//     ErrPartitionExhausted when no power-of-2 partition remains,
//     ErrCheckpointUnrecoverable when generations exist but none
//     restores.
//
// Every rung climbed is recorded as a RungRecord and folded into the
// outcome digest: two same-seed runs must climb the same ladder at the
// same picoseconds, at workers=1 and workers=8 alike.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/event"
	"qcdoc/internal/lattice"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/telemetry"
)

// Typed ladder-exhaustion errors.
var (
	// ErrPartitionExhausted: cumulative FRU loss left no healthy
	// power-of-2 partition to shrink to.
	ErrPartitionExhausted = errors.New("core: no healthy power-of-2 partition remains")
	// ErrCheckpointUnrecoverable: checkpoint generations were sealed,
	// but every retained one failed restore (corrupt, torn, or
	// incomplete after retries). A cold start would silently discard
	// converged work, so this is an error, not a rung.
	ErrCheckpointUnrecoverable = errors.New("core: no retained checkpoint generation is restorable")
)

// RecoveryConfig parameterizes the supervisor's ladder.
type RecoveryConfig struct {
	// Generations is K, the number of complete checkpoint generations
	// retained on the host (older ones are pruned at seal time).
	Generations int
	// ChunkRetries bounds re-reads of one invalid chunk beyond the
	// first attempt.
	ChunkRetries int
	// Backoff is the first retry's sim-time backoff; it doubles per
	// retry, exchange()-style.
	Backoff event.Time
	// BackoffBudget caps the total backoff slept per restore; once
	// spent, invalid chunks fail straight to generation fallback.
	BackoffBudget event.Time
	// ReadLatency and ReadBps model the host RAID: each chunk read
	// costs ReadLatency plus size/ReadBps of sim time.
	ReadLatency event.Time
	ReadBps     int64
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.Generations == 0 {
		c.Generations = 3
	}
	if c.ChunkRetries == 0 {
		c.ChunkRetries = 2
	}
	if c.Backoff == 0 {
		c.Backoff = 50 * event.Microsecond
	}
	if c.BackoffBudget == 0 {
		c.BackoffBudget = 2 * event.Millisecond
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = 5 * event.Microsecond
	}
	if c.ReadBps == 0 {
		c.ReadBps = 2_000_000_000
	}
	return c
}

// RungKind identifies one kind of ladder action.
type RungKind uint8

const (
	// RungChunkRetry: one invalid chunk read retried after backoff.
	RungChunkRetry RungKind = iota + 1
	// RungGenerationFallback: a generation failed restore; stepping to
	// the next older one.
	RungGenerationFallback
	// RungColdStart: no generation was ever sealed; restarting from
	// iteration zero.
	RungColdStart
	// RungRepartition: FRU loss shrank the job to a smaller power-of-2
	// partition.
	RungRepartition
	// RungFalsePositive: the watchdog probed and rejected a spurious
	// death report.
	RungFalsePositive
	// RungRedetect: a fault landed mid-recovery; detection/isolation
	// re-entered before the job relaunched.
	RungRedetect
	// RungManifestRebuild: the stored manifest failed validation and
	// was rebuilt by scanning the chunk store.
	RungManifestRebuild
)

func (k RungKind) String() string {
	switch k {
	case RungChunkRetry:
		return "chunk-retry"
	case RungGenerationFallback:
		return "generation-fallback"
	case RungColdStart:
		return "cold-start"
	case RungRepartition:
		return "repartition"
	case RungFalsePositive:
		return "false-positive"
	case RungRedetect:
		return "redetect"
	case RungManifestRebuild:
		return "manifest-rebuild"
	}
	return fmt.Sprintf("rung(%d)", uint8(k))
}

// RungRecord is one ladder action, digest-folded.
type RungRecord struct {
	// Attempt is the attempt climbing the rung.
	Attempt int
	Kind    RungKind
	// Rank is the chunk's or node's rank, -1 when not rank-scoped.
	Rank int
	// Gen carries the rung's magnitude: the generation index fallen
	// past, the shrunken partition size, or zero.
	Gen int
	// At is the sim time of the action on the attempt's clock.
	At event.Time
}

func (r RungRecord) String() string {
	return fmt.Sprintf("a%d %s rank=%d gen=%d at %v", r.Attempt, r.Kind, r.Rank, r.Gen, r.At)
}

// HasRung reports whether the run climbed at least one rung of the
// given kind (the CLI's -require-fallback/-require-shrink gates).
func (o *ChaosOutcome) HasRung(kind RungKind) bool {
	for _, r := range o.Rungs {
		if r.Kind == kind {
			return true
		}
	}
	return false
}

// RecoveryStats are the supervisor's cumulative counters, exported
// through the telemetry registry of every attempt's machine.
type RecoveryStats struct {
	Restores            uint64
	ChunkRetries        uint64
	GenerationFallbacks uint64
	ColdStarts          uint64
	Repartitions        uint64
	Redetects           uint64
	ManifestRebuilds    uint64
}

// manifestName is the host-storage path of the generation manifest.
const manifestName = "ckpt/chaos/MANIFEST"

// supervisor drives the recovery ladder across a chaos run's attempts.
// It owns the one artifact that outlives an attempt — the host FS —
// plus the ladder's record and statistics.
type supervisor struct {
	cfg    RecoveryConfig
	fs     map[string][]byte
	global lattice.Shape4
	logf   func(string, ...any)

	stats RecoveryStats
	rungs []RungRecord

	// Per-attempt latency histograms (fresh each attempt, registered on
	// that attempt's machine registry; the run outcome merges the
	// per-attempt snapshots, so the merged totals are exact).
	backoffWait   *telemetry.Histogram
	fallbackDepth *telemetry.Histogram
}

func newSupervisor(cfg RecoveryConfig, fs map[string][]byte, global lattice.Shape4,
	logf func(string, ...any)) *supervisor {
	return &supervisor{cfg: cfg.withDefaults(), fs: fs, global: global, logf: logf}
}

// beginAttempt resets the per-attempt histograms and registers the
// supervisor's observability on the attempt's machine registry.
func (sup *supervisor) beginAttempt(reg *telemetry.Registry) {
	sup.backoffWait = &telemetry.Histogram{}
	sup.fallbackDepth = &telemetry.Histogram{}
	reg.RegisterCounters("recovery", func(emit telemetry.EmitFunc) {
		emit("restores", sup.stats.Restores)
		emit("chunk_retries", sup.stats.ChunkRetries)
		emit("generation_fallbacks", sup.stats.GenerationFallbacks)
		emit("cold_starts", sup.stats.ColdStarts)
		emit("repartitions", sup.stats.Repartitions)
		emit("redetects", sup.stats.Redetects)
		emit("manifest_rebuilds", sup.stats.ManifestRebuilds)
	})
	reg.RegisterHistograms("recovery", func(emit telemetry.HistEmitFunc) {
		emit("backoff_wait_ps", sup.backoffWait.Snapshot())
		emit("generation_fallback_depth", sup.fallbackDepth.Snapshot())
	})
}

func (sup *supervisor) rung(attempt int, kind RungKind, rank, gen int, at event.Time) {
	rec := RungRecord{Attempt: attempt, Kind: kind, Rank: rank, Gen: gen, At: at}
	sup.rungs = append(sup.rungs, rec)
	sup.logf("attempt %d: ladder: %s", attempt, rec)
}

// restore reassembles the newest restorable checkpoint generation, in
// sim time (the control process pays RAID read latency and retry
// backoff on the attempt's clock). It seals and prunes generations
// first, then walks them newest-first: per-chunk CRC validation against
// the manifest, full decode validation, bounded retries, generation
// fallback. Returns the restored field and its iteration, a fresh field
// at iteration 0 when nothing was ever sealed (cold start), or
// ErrCheckpointUnrecoverable when generations exist but none restores.
func (sup *supervisor) restore(p *event.Proc, attempt int, past []attemptLayout) (*lattice.FermionField, int, error) {
	if len(past) == 0 {
		// First attempt: nothing can have been checkpointed yet.
		return lattice.NewFermionField(sup.global), 0, nil
	}
	sup.stats.Restores++
	man := sup.sealGenerations(attempt, past, p.Now())
	gens := man.Generations
	budget := sup.cfg.BackoffBudget
	for gi := len(gens) - 1; gi >= 0; gi-- {
		g := gens[gi]
		al := past[g.Attempt]
		cand, ok := sup.restoreGeneration(p, attempt, g, al, &budget)
		if ok {
			depth := len(gens) - 1 - gi
			sup.fallbackDepth.Record(uint64(depth))
			sup.logf("attempt %d: restored generation a%d/i%06d (fallback depth %d)",
				attempt, g.Attempt, g.Iter, depth)
			return cand, g.Iter, nil
		}
		sup.stats.GenerationFallbacks++
		sup.rung(attempt, RungGenerationFallback, -1, gi, p.Now())
	}
	if len(gens) > 0 {
		return nil, 0, fmt.Errorf("%w: %d generation(s) retained, every one failed validation",
			ErrCheckpointUnrecoverable, len(gens))
	}
	// No generation was ever sealed — the faults landed before the
	// first complete checkpoint. Cold restart is the bottom rung, legal
	// only here: it discards nothing, because nothing was saved.
	sup.stats.ColdStarts++
	sup.rung(attempt, RungColdStart, -1, 0, p.Now())
	return lattice.NewFermionField(sup.global), 0, nil
}

// restoreGeneration reads and validates every chunk of one generation,
// gathering into a candidate field. Any rank that stays invalid after
// its retries fails the whole generation.
func (sup *supervisor) restoreGeneration(p *event.Proc, attempt int, g checkpoint.Generation,
	al attemptLayout, budget *event.Time) (*lattice.FermionField, bool) {
	cand := lattice.NewFermionField(sup.global)
	for rank := 0; rank < len(g.CRCs); rank++ {
		local, ok := sup.readChunk(p, attempt, g, rank, al, budget)
		if !ok {
			return nil, false
		}
		gc := GridCoord(al.lay.Fold.ToLogical(al.shape.CoordOf(rank)))
		GatherFermion(cand, al.lay.Dec, gc, local)
	}
	return cand, true
}

// readChunk reads one rank's chunk with validation and bounded retry:
// the manifest CRC convicts silent corruption before the decode pays
// for a full parse, the decode's typed errors convict torn writes and
// header damage, and each failure retries under the doubling backoff
// until the per-restore budget or the retry bound runs out — the
// exchange() policy, applied to storage.
func (sup *supervisor) readChunk(p *event.Proc, attempt int, g checkpoint.Generation,
	rank int, al attemptLayout, budget *event.Time) (*lattice.FermionField, bool) {
	name := chunkName(g.Attempt, g.Iter, rank)
	backoff := sup.cfg.Backoff
	for try := 0; ; try++ {
		if blob, ok := sup.fs[name]; ok {
			p.Sleep(sup.readLatency(len(blob)))
			if checkpoint.BlobCRC(blob) == g.CRCs[rank] {
				local, it, err := checkpoint.ReadSolverState(bytes.NewReader(blob))
				if err == nil && int(it) == g.Iter && local.L == al.lay.Dec.Local {
					return local, true
				}
			}
		}
		if try >= sup.cfg.ChunkRetries || *budget < backoff {
			return nil, false
		}
		sup.stats.ChunkRetries++
		sup.rung(attempt, RungChunkRetry, rank, try+1, p.Now())
		sup.backoffWait.Record(uint64(backoff))
		p.Sleep(backoff)
		*budget -= backoff
		backoff *= 2
	}
}

// readLatency is the sim-time cost of one RAID chunk read.
func (sup *supervisor) readLatency(n int) event.Time {
	return sup.cfg.ReadLatency + event.Time(float64(n)*1e12/float64(sup.cfg.ReadBps))
}

// sealGenerations brings the manifest up to date and enforces the
// retention policy: read the stored manifest (rebuilding by scan when
// it fails validation), seal every newly complete checkpoint set of a
// past attempt with per-chunk CRCs, order generations oldest-first,
// prune all but the newest K (chunks included), and write the manifest
// back.
func (sup *supervisor) sealGenerations(attempt int, past []attemptLayout, now event.Time) *checkpoint.Manifest {
	man := &checkpoint.Manifest{}
	if blob, ok := sup.fs[manifestName]; ok {
		m, err := checkpoint.ReadManifest(bytes.NewReader(blob))
		if err != nil {
			sup.stats.ManifestRebuilds++
			sup.rung(attempt, RungManifestRebuild, -1, 0, now)
		} else {
			man = m
		}
	}
	known := map[[2]int]bool{}
	for _, g := range man.Generations {
		known[[2]int{g.Attempt, g.Iter}] = true
	}
	for a := 0; a < len(past); a++ {
		vol := past[a].shape.Volume()
		var iters []int
		for iter := range iterationsOf(sup.fs, a) {
			iters = append(iters, iter)
		}
		sort.Ints(iters)
		for _, iter := range iters {
			if known[[2]int{a, iter}] || !presentSet(sup.fs, a, iter, vol) {
				continue
			}
			crcs := make([]uint32, vol)
			for rank := 0; rank < vol; rank++ {
				crcs[rank] = checkpoint.BlobCRC(sup.fs[chunkName(a, iter, rank)])
			}
			man.Generations = append(man.Generations, checkpoint.Generation{
				Attempt: a, Iter: iter, CRCs: crcs,
			})
		}
	}
	sort.Slice(man.Generations, func(i, j int) bool {
		gi, gj := man.Generations[i], man.Generations[j]
		if gi.Attempt != gj.Attempt {
			return gi.Attempt < gj.Attempt
		}
		return gi.Iter < gj.Iter
	})
	if k := sup.cfg.Generations; len(man.Generations) > k {
		for _, g := range man.Generations[:len(man.Generations)-k] {
			for rank := range g.CRCs {
				delete(sup.fs, chunkName(g.Attempt, g.Iter, rank))
			}
		}
		man.Generations = append([]checkpoint.Generation(nil), man.Generations[len(man.Generations)-k:]...)
	}
	var buf bytes.Buffer
	if err := checkpoint.WriteManifest(&buf, man); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	sup.fs[manifestName] = buf.Bytes()
	return man
}

// presentSet reports whether every rank's chunk of one set is stored.
func presentSet(fs map[string][]byte, a, iter, vol int) bool {
	for rank := 0; rank < vol; rank++ {
		if _, ok := fs[chunkName(a, iter, rank)]; !ok {
			return false
		}
	}
	return true
}

// chaosHost adapts the daemon's storage and watchdog to the fault
// plan's host-plane surface (faultplan.Host): chunk corruption and torn
// writes strike the FS map, spurious death reports go to the watchdog's
// probe path. All methods run on the host engine at the fault's time.
type chaosHost struct {
	fs map[string][]byte
	wd *qdaemon.Watchdog
}

func (h *chaosHost) CorruptChunk(rank int, sel uint64) bool {
	name := newestChunk(h.fs, rank)
	if name == "" {
		return false
	}
	blob := h.fs[name]
	if len(blob) == 0 {
		return false
	}
	bit := sel % uint64(len(blob)*8)
	blob[bit/8] ^= 1 << (bit % 8)
	return true
}

func (h *chaosHost) TearChunk(rank int, sel uint64) bool {
	name := newestChunk(h.fs, rank)
	if name == "" {
		return false
	}
	blob := h.fs[name]
	if len(blob) < 2 {
		return false
	}
	keep := 1 + int(sel%uint64(len(blob)-1))
	h.fs[name] = blob[:keep]
	return true
}

func (h *chaosHost) SuspectNode(rank int) { h.wd.Suspect(rank) }

// newestChunk finds the newest stored chunk (highest attempt, then
// highest iteration) belonging to rank — the blob a storage fault is
// most likely to hurt, because it is the one the next restore wants.
// The max-reduction over the FS keys is iteration-order-invariant.
func newestChunk(fs map[string][]byte, rank int) string {
	bestA, bestI := -1, -1
	for name := range fs {
		var a, iter, r int
		if _, err := fmt.Sscanf(name, "ckpt/chaos/a%d/i%06d/r%d", &a, &iter, &r); err != nil || r != rank {
			continue
		}
		if a > bestA || (a == bestA && iter > bestI) {
			bestA, bestI = a, iter
		}
	}
	if bestA < 0 {
		return ""
	}
	return chunkName(bestA, bestI, rank)
}
