package core

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/solver"
)

// Session is a booted machine plus a lattice layout: the environment a
// QCD job runs in.
type Session struct {
	Eng *event.Engine
	M   *machine.Machine
	Lay Layout

	pool   *machine.Pool
	closed bool
}

// NewSession builds and boots a machine of the given shape and lays a
// global lattice over it.
func NewSession(machineShape geom.Shape, global lattice.Shape4) (*Session, error) {
	return NewSessionConfig(machine.DefaultConfig(machineShape), global)
}

// NewSessionConfig is NewSession with full machine configuration. When
// cfg.Pool is set, the engine's heap storage and the wires' frame rings
// come from (and return to, on Close) that pool.
func NewSessionConfig(cfg machine.Config, global lattice.Shape4) (*Session, error) {
	lay, err := NewLayout(cfg.Shape, global)
	if err != nil {
		return nil, err
	}
	eng := cfg.Pool.NewEngine()
	m := machine.Build(eng, cfg)
	if err := m.Boot(); err != nil {
		eng.Shutdown()
		cfg.Pool.Reclaim(eng, m)
		return nil, err
	}
	return &Session{Eng: eng, M: m, Lay: lay, pool: cfg.Pool}, nil
}

// Close releases the session's simulation resources and returns pooled
// storage. Idempotent: every call after the first is a no-op, so
// experiments can both defer it and close early on success paths.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.Eng.Shutdown()
	s.pool.Reclaim(s.Eng, s.M)
}

// firstOf returns the lowest-rank error from a per-rank error slice —
// the deterministic replacement for racing rank closures on one shared
// firstErr variable.
func firstOf(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SolveMetrics reports a distributed solve.
type SolveMetrics struct {
	Iterations   int
	Applications int
	SimTime      event.Time // simulated wall time of the whole solve
	RelResidual  float64
	// UsefulFlops is the per-node operator + Krylov linear algebra work.
	UsefulFlops float64
	// SustainedPerNode is UsefulFlops / SimTime, in flops/s.
	SustainedPerNode float64
	// Efficiency is SustainedPerNode / peak node flops.
	Efficiency float64
	// CommStats snapshots the machine's SCU counters after the solve.
	WordsSent uint64
	Resends   uint64
}

// SolveWilson runs a distributed CGNE Wilson solve of D x = b on the
// machine, with every halo exchange and global sum travelling the
// simulated network and every kernel charged to the CPU model. It
// returns the gathered global solution and timing metrics.
func (s *Session) SolveWilson(gauge *lattice.GaugeField, b *lattice.FermionField, mass float64, prec fermion.Precision, tol float64, maxIter int) (*lattice.FermionField, SolveMetrics, error) {
	dec := s.Lay.Dec
	if gauge.L != dec.Global || b.L != dec.Global {
		return nil, SolveMetrics{}, fmt.Errorf("core: field shape %v does not match layout %v", gauge.L, dec.Global)
	}
	solution := lattice.NewFermionField(dec.Global)
	var met SolveMetrics
	// Per-rank error slots: rank programs may execute on different shard
	// engines concurrently, so each writes only its own element.
	errs := make([]error, s.M.NumNodes())
	start := s.Eng.Now()
	runErr := s.M.RunSPMD("wilson-cg", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			comm := qmp.New(ctx, s.Lay.Fold)
			gc := GridCoord(comm.Coord())
			localG := ScatterGauge(gauge, dec, gc)
			localB := ScatterFermion(b, dec, gc)
			dw := NewDistWilson(ctx, comm, dec, localG, mass, prec)
			ss := DistSpace(ctx, comm, dec, fermion.WilsonKind, prec)
			sp := distSpinorSpace(ss)
			x := lattice.NewFermionField(dec.Local)
			res, err := solver.CGNE(sp, dw.Apply, dw.ApplyDag, x, localB, tol, maxIter)
			errs[rank] = err
			GatherFermion(solution, dec, gc, x)
			if rank == 0 {
				met.Iterations = res.Iterations
				met.Applications = res.Applications
				met.RelResidual = res.RelResidual
			}
		}
	})
	if runErr != nil {
		return nil, met, runErr
	}
	if err := firstOf(errs); err != nil {
		return solution, met, err
	}
	met.SimTime = s.Eng.Now() - start
	s.fillMetrics(&met, fermion.WilsonKind, 1)
	if _, err := s.M.VerifyChecksums(); err != nil {
		return solution, met, err
	}
	return solution, met, nil
}

// fillMetrics derives rates from counts. slices is 1 for 4-D operators
// and Ls for domain-wall fields (whose per-site costs are per slice).
func (s *Session) fillMetrics(met *SolveMetrics, kind fermion.OpKind, slices int) {
	vLocal := float64(s.Lay.Dec.LocalVolume()) * float64(slices)
	n := fermion.FieldReals(kind)
	// Operator applications plus the Krylov linear algebra (3 axpy + 2
	// dot per iteration at 2n flops per site each).
	met.UsefulFlops = float64(met.Applications)*fermion.FlopsPerSite(kind)*vLocal +
		float64(met.Iterations)*10*n*vLocal
	if met.SimTime > 0 {
		met.SustainedPerNode = met.UsefulFlops / met.SimTime.Seconds()
		peak := 2 * float64(s.M.Cfg.Clock)
		met.Efficiency = met.SustainedPerNode / peak
	}
	st := s.M.Stats()
	met.WordsSent = st.WordsSent
	met.Resends = st.Resends
}

// distSpinorSpace adapts solverSpace to spinor fields.
func distSpinorSpace(ss solverSpace) solver.Space[*lattice.FermionField] {
	return solver.Space[*lattice.FermionField]{
		New:  func() *lattice.FermionField { return lattice.NewFermionField(ss.local) },
		Copy: func(dst, src *lattice.FermionField) { dst.Copy(src) },
		Dot: func(a, b *lattice.FermionField) complex128 {
			local := a.Dot(b)
			re := ss.globalSum(real(local))
			im := ss.globalSum(imag(local))
			return complex(re, im)
		},
		Norm2: func(a *lattice.FermionField) float64 {
			return ss.globalSum(a.Norm2())
		},
		AXPY: func(y *lattice.FermionField, a complex128, x *lattice.FermionField) {
			ss.chargeAXPY()
			y.AXPY(a, x)
		},
		Scale: func(x *lattice.FermionField, a complex128) {
			ss.chargeAXPY()
			x.Scale(a)
		},
		OnIteration: ss.noteIteration,
	}
}
