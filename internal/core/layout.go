// Package core is the application layer that runs lattice QCD on the
// simulated QCDOC: it folds the six-dimensional machine onto the
// four-dimensional physics grid (§1: "each processor becomes responsible
// for the local variables associated with a space-time hypercube"),
// scatters global fields into per-node local fields, runs distributed
// Dirac operators whose halo exchanges and global sums travel through
// the functional SCU network, charges the per-node compute model for
// every kernel, and gathers results back for verification against the
// single-node reference implementations.
package core

import (
	"fmt"

	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
)

// Layout binds a global lattice to a machine: a fold of the 6-D torus
// into four logical axes and the resulting decomposition.
type Layout struct {
	Fold *geom.Fold
	Dec  lattice.Decomp
}

// NewLayout folds the machine to four dimensions (§2.2: "we chose to
// make the mesh network six dimensional, so we can make lower-
// dimensional partitions of the machine in software") and divides the
// global lattice over the logical grid.
func NewLayout(machineShape geom.Shape, global lattice.Shape4) (Layout, error) {
	fold, err := FoldTo4D(machineShape)
	if err != nil {
		return Layout{}, err
	}
	ls := fold.Logical()
	grid := lattice.Shape4{ls[0], ls[1], ls[2], ls[3]}
	dec, err := lattice.NewDecomp(global, grid)
	if err != nil {
		return Layout{}, err
	}
	return Layout{Fold: fold, Dec: dec}, nil
}

// FoldTo4D builds a 4-D fold of a machine shape: the four largest
// dimensions become axes and the remaining dimensions (extent > 1) are
// folded into the first axes, fastest first.
func FoldTo4D(machineShape geom.Shape) (*geom.Fold, error) {
	// Collect dims with extent > 1, sorted by extent descending (stable
	// by index).
	type de struct{ dim, ext int }
	var ds []de
	for d := 0; d < geom.MaxDim; d++ {
		if machineShape[d] > 1 {
			ds = append(ds, de{d, machineShape[d]})
		}
	}
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].ext > ds[i].ext {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	if len(ds) == 0 {
		// Single-node machine: trivial 4-D grid 1x1x1x1.
		return geom.NewFold(machineShape, [][]int{{0}, {1}, {2}, {3}})
	}
	axes := make([][]int, 0, 4)
	for i := 0; i < len(ds) && i < 4; i++ {
		axes = append(axes, []int{ds[i].dim})
	}
	// Extra dims fold into axes round-robin; the extra dim is FASTER (it
	// comes first in the axis's dim list? The serpentine closure needs
	// the slowest dim even; extents here are machine extents (usually
	// powers of two). Put the extra dim first (fastest) to keep the
	// original axis dim slowest.
	for i := 4; i < len(ds); i++ {
		a := (i - 4) % len(axes)
		axes[a] = append([]int{ds[i].dim}, axes[a]...)
	}
	// Pad with unused extent-1 machine dims if the machine has fewer
	// than four used dimensions.
	used := map[int]bool{}
	for _, dims := range axes {
		for _, d := range dims {
			used[d] = true
		}
	}
	for d := 0; d < geom.MaxDim && len(axes) < 4; d++ {
		if !used[d] && machineShape[d] == 1 {
			axes = append(axes, []int{d})
			used[d] = true
		}
	}
	if len(axes) != 4 {
		return nil, fmt.Errorf("core: cannot form a 4-D fold of %v", machineShape)
	}
	return geom.NewFold(machineShape, axes)
}

// GridCoord extracts the 4-D grid coordinate of a logical coordinate.
func GridCoord(lc geom.Coord) lattice.Site {
	return lattice.Site{lc[0], lc[1], lc[2], lc[3]}
}

// ScatterGauge extracts the local gauge field owned by grid node gc.
func ScatterGauge(global *lattice.GaugeField, dec lattice.Decomp, gc lattice.Site) *lattice.GaugeField {
	local := lattice.NewGaugeField(dec.Local)
	v := dec.Local.Volume()
	for idx := 0; idx < v; idx++ {
		ls := dec.Local.SiteOf(idx)
		gs := dec.GlobalOf(gc, ls)
		for mu := 0; mu < lattice.Ndim; mu++ {
			local.SetLink(ls, mu, global.Link(gs, mu))
		}
	}
	return local
}

// ScatterFermion extracts the local spinor field owned by grid node gc.
func ScatterFermion(global *lattice.FermionField, dec lattice.Decomp, gc lattice.Site) *lattice.FermionField {
	local := lattice.NewFermionField(dec.Local)
	v := dec.Local.Volume()
	for idx := 0; idx < v; idx++ {
		ls := dec.Local.SiteOf(idx)
		gs := dec.GlobalOf(gc, ls)
		local.S[idx] = global.S[global.L.Index(gs)]
	}
	return local
}

// GatherFermion writes a node's local spinor field into the global field.
func GatherFermion(global *lattice.FermionField, dec lattice.Decomp, gc lattice.Site, local *lattice.FermionField) {
	v := dec.Local.Volume()
	for idx := 0; idx < v; idx++ {
		ls := dec.Local.SiteOf(idx)
		gs := dec.GlobalOf(gc, ls)
		global.S[global.L.Index(gs)] = local.S[idx]
	}
}

// ScatterColor extracts the local staggered field owned by grid node gc.
func ScatterColor(global *lattice.ColorField, dec lattice.Decomp, gc lattice.Site) *lattice.ColorField {
	local := lattice.NewColorField(dec.Local)
	v := dec.Local.Volume()
	for idx := 0; idx < v; idx++ {
		ls := dec.Local.SiteOf(idx)
		gs := dec.GlobalOf(gc, ls)
		local.V[idx] = global.V[global.L.Index(gs)]
	}
	return local
}

// GatherColor writes a node's local staggered field into the global field.
func GatherColor(global *lattice.ColorField, dec lattice.Decomp, gc lattice.Site, local *lattice.ColorField) {
	v := dec.Local.Volume()
	for idx := 0; idx < v; idx++ {
		ls := dec.Local.SiteOf(idx)
		gs := dec.GlobalOf(gc, ls)
		global.V[global.L.Index(gs)] = local.V[idx]
	}
}
