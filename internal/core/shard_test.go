package core

import (
	"hash/fnv"
	"testing"

	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
)

// shardedSolveDigest runs the E1/E10 Wilson solve on a sharded machine
// and fingerprints everything observable: solution bits, network word
// count, iteration count, and the simulated finish time.
func shardedSolveDigest(t *testing.T, workers int) uint64 {
	t.Helper()
	global := lattice.Shape4{4, 4, 2, 2}
	cfg := machine.DefaultConfig(geom.MakeShape(2, 2, 2, 2))
	cfg.Shards = machine.ShardAuto
	cfg.Workers = workers
	sess, err := NewSessionConfig(cfg, global)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.M.Cluster() == nil {
		t.Fatal("sharded config built an unsharded machine")
	}
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(21)
	b := lattice.NewFermionField(global)
	b.Gaussian(22)
	x, met, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var buf [8]byte
	mix := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	w := make([]uint64, 24)
	for i := range x.S {
		latmath.PackSpinor(x.S[i], w)
		for _, v := range w {
			mix(v)
		}
	}
	mix(met.WordsSent)
	mix(uint64(met.Iterations))
	mix(uint64(met.SimTime))
	return h.Sum64()
}

// TestShardDeterminismDigests is the worker-count-invariance gate: the
// same seed must produce bit-identical outcomes at workers 1, 2, 4 and
// 8, for both a clean distributed solve (E1/E10) and a full chaos
// recovery run (E16) with the fault plan armed on the sharded engine.
// Workers choose OS threads, never physics.
func TestShardDeterminismDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker digest matrix")
	}
	workerCounts := []int{1, 2, 4, 8}

	s0 := shardedSolveDigest(t, 1)
	for _, w := range workerCounts[1:] {
		if s := shardedSolveDigest(t, w); s != s0 {
			t.Fatalf("solve digest at workers=%d: %#x, want %#x", w, s, s0)
		}
	}

	chaos := func(w int) (uint64, uint32) {
		cfg := chaosConfig(16)
		cfg.Shards = machine.ShardAuto
		cfg.Workers = w
		out, err := RunChaosWilson(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Converged || len(out.Attempts) < 2 {
			t.Fatalf("workers=%d: chaos run %+v", w, out.Attempts)
		}
		return out.Digest, out.SolutionCRC
	}
	d0, c0 := chaos(1)
	for _, w := range workerCounts[1:] {
		d, c := chaos(w)
		if d != d0 {
			t.Fatalf("chaos digest at workers=%d: %#x, want %#x", w, d, d0)
		}
		if c != c0 {
			t.Fatalf("chaos solution CRC at workers=%d: %#x, want %#x", w, c, c0)
		}
	}
}
