// Package hssl models the IBM High Speed Serial Link controllers that
// carry the QCDOC mesh network (§2.2): bit-serial, uni-directional wires
// running at the processor clock (target 500 MHz), with a power-on
// training sequence that establishes sampling times and byte boundaries,
// idle bytes when no data flows, and — for the fault-injection
// experiments — a hook that corrupts frames in flight.
//
// The motherboard provides a matched-impedance path with no redrive, so
// propagation is a small fixed time-of-flight; dense packaging keeps it
// to a few nanoseconds even through metres of cable (§1, §2.4).
//
// Frames are fixed-size values (scupkt.Wire) carried by value from the
// transmitter through the in-flight ring to the receiver: the hardware
// has no allocator, and neither does the steady-state path here. See
// DESIGN.md §9 for the frame memory model.
package hssl

import (
	"errors"
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/scupkt"
)

// DefaultClock is the paper's target link speed: the links run at the
// same clock as the processor.
const DefaultClock = 500 * event.MHz

// DefaultPropagation is the modelled time-of-flight between neighbouring
// ASICs through motherboard traces and external cables. Dense packaging
// keeps this small; 5 ns corresponds to about a metre of trace+cable.
const DefaultPropagation = 5 * event.Nanosecond

// TrainingBytes is the length of the known byte sequence the HSSL
// controllers exchange after reset to lock sampling phase and byte
// framing.
const TrainingBytes = 64

// Frame is one serialized packet in flight on a wire: the frame bytes
// as a value (the embedded scupkt.Wire) plus a monotone per-wire frame
// number used by fault injectors. Frames are copied, never shared — a
// receiver may keep its Frame as long as it likes without pinning any
// wire state.
type Frame struct {
	scupkt.Wire
	Seq uint64
}

// FaultFunc may corrupt a frame in flight by mutating it in place,
// reporting whether it changed anything. A nil FaultFunc means a clean
// wire. The non-faulting path must be free: a hook that leaves the
// frame alone just returns false, with no copy.
type FaultFunc func(f *Frame) bool

// Stats counts wire activity.
type Stats struct {
	Frames    uint64
	Bits      uint64
	Corrupted uint64 // frames altered by the fault injector
	Dropped   uint64 // frames launched into a dead wire, never delivered
}

// Delivery stages for the wire's pre-bound event handler. Each frame
// takes the arrive stage and, when a continuation-tier receiver is
// attached, one handle stage — the same one-event deferral a queued
// frame gets between Put and the receiving process's wake, so
// intra-timestamp event ordering (and with it frame serialization order
// on shared return wires) is identical across the two tiers.
const (
	wireArrive uint64 = iota // the last bit has reached the receiver
	wireHandle               // hand the ring head to the OnFrame handler
)

// Wire is one uni-directional bit-serial link between two neighbouring
// nodes. Frames are serialized at the link clock (one bit per cycle),
// then arrive at the far end after the propagation delay. Serialization
// is strictly FIFO: a frame cannot start until the previous one has left
// the transmitter.
type Wire struct {
	eng     *event.Engine // transmitter's engine: Send, training, fault state
	rxEng   *event.Engine // receiver's engine: delivery, rx queue, OnFrame
	name    string
	clock   event.Hz
	prop    event.Time
	rx      *event.Queue[Frame]
	handler func(Frame) // continuation-tier receiver; bypasses rx when set
	trained bool

	busyUntil event.Time
	seq       uint64
	fault     FaultFunc
	stats     Stats
	dead      bool  // permanent hardware failure; see Kill
	xmit      Frame // scratch slot for fault injection on the cross-shard path

	// In-flight frames, a reusable ring: Send pushes at the tail, the
	// delivery events pop the head. Arrival order equals send order (the
	// wire is point-to-point and serialization is FIFO), so the ring
	// replaces a per-frame delivery closure without changing anything
	// observable. It grows to the wire's high-water mark once and is
	// then allocation-free.
	fly     []Frame
	flyHead int
	flyLen  int
}

// NewWire creates a wire on the engine. clock is the serial bit rate;
// prop the time-of-flight to the receiver.
func NewWire(eng *event.Engine, name string, clock event.Hz, prop event.Time) *Wire {
	return NewWireBetween(eng, eng, name, clock, prop)
}

// NewWireBetween creates a wire whose transmitter and receiver live on
// different shard engines of one cluster. The transmit half (Send,
// training, the fault hook) runs on tx; deliveries, the receive queue
// and OnFrame handlers run on rx. When the two engines differ, frames
// cross the shard boundary by value through the cluster's mailboxes at
// their modelled arrival time — which the conservative lookahead
// (MinLatency) guarantees is always at least one window away.
func NewWireBetween(tx, rx *event.Engine, name string, clock event.Hz, prop event.Time) *Wire {
	return &Wire{
		eng:   tx,
		rxEng: rx,
		name:  name,
		clock: clock,
		prop:  prop,
		rx:    event.NewQueue[Frame](rx, "hssl "+name),
	}
}

// MinTransmittedFrameBytes is the smallest frame the SCU ever puts on a
// wire: the 2-byte acknowledgement / partition-interrupt frame. (The
// 1-byte Idle frame exists in the wire format but trained controllers
// exchange idles implicitly; the simulator never transmits one — and
// the cross-shard path asserts it, see event.Scheduler.CrossPayload.)
const MinTransmittedFrameBytes = scupkt.AckFrame

// MinLatency returns the guaranteed minimum time between an HSSL send
// and its visibility at the receiver: the serialization time of the
// smallest transmitted frame plus the time of flight. This is the
// conservative lookahead of the sharded cluster (hep-lat/0210034
// quantifies both terms; DESIGN.md §13 derives the bound).
func MinLatency(clock event.Hz, prop event.Time) event.Time {
	return clock.Cycles(int64(MinTransmittedFrameBytes)*8) + prop
}

// SetFault installs (or clears, with nil) the fault injector.
func (w *Wire) SetFault(f FaultFunc) { w.fault = f }

// Stats returns a copy of the wire's counters.
func (w *Wire) Stats() Stats { return w.stats }

// Name returns the wire's name.
func (w *Wire) Name() string { return w.name }

// Clock returns the wire's bit clock.
func (w *Wire) Clock() event.Hz { return w.clock }

// ErrNotTrained is returned when data is sent before link training.
var ErrNotTrained = errors.New("hssl: link not trained")

// TrainTime is the duration of the power-on training handshake: the
// serialization time of the training pattern plus one propagation delay.
func (w *Wire) TrainTime() event.Time {
	return w.clock.Cycles(int64(TrainingBytes*8)) + w.prop
}

// Train performs the power-on training handshake: the transmitter sends
// the known TrainingBytes sequence so the receiver can lock its sampling
// phase and byte boundaries. Takes the serialization time of the training
// pattern plus one propagation delay.
func (w *Wire) Train(p *event.Proc) {
	p.Sleep(w.TrainTime())
	w.trained = true
}

// TrainAsync is the continuation-tier Train: the wire becomes trained
// after TrainTime, then done (if non-nil) runs. The machine layer chains
// these to train a node's links serially without a trainer process.
func (w *Wire) TrainAsync(done func()) {
	w.eng.After(w.TrainTime(), func() {
		w.trained = true
		if done != nil {
			done()
		}
	})
}

// Trained reports whether the wire has completed training.
func (w *Wire) Trained() bool { return w.trained }

// Reset drops training (e.g. on machine reset); in-flight frames are
// still delivered, matching a real wire where bits already launched
// arrive regardless.
func (w *Wire) Reset() { w.trained = false }

// Kill permanently severs the wire: a failed driver, a broken trace.
// The transmitter cannot tell — it keeps serializing, and Send keeps
// accounting serialization time — but nothing ever reaches the far end
// again. Retraining "succeeds" from the transmit side (the training
// pattern leaves the pins) yet restores nothing, which is exactly what
// forces the SCU's give-up escalation: retrains that never produce an
// acknowledgement.
func (w *Wire) Kill() { w.dead = true }

// Dead reports whether the wire has been permanently severed.
func (w *Wire) Dead() bool { return w.dead }

// SerializeTime returns how long the given frame occupies the transmitter.
func (w *Wire) SerializeTime(nBytes int) event.Time {
	return w.clock.Cycles(int64(nBytes) * 8)
}

// Send launches a frame onto the wire. It returns the time at which the
// frame will have fully arrived at the receiver. Send never blocks the
// caller: the SCU hardware queues into the serializer; flow control
// happens one layer up via the ack window. An untrained wire rejects
// traffic.
//
// The frame travels by value: Send copies the bits into the in-flight
// ring, so the caller's Wire value is dead the moment Send returns, and
// nothing on the steady-state path touches the heap.
//qcdoc:noalloc
func (w *Wire) Send(data scupkt.Wire) (event.Time, error) {
	if !w.trained {
		return 0, fmt.Errorf("%w: %s", ErrNotTrained, w.name) //qcdoclint:alloc-ok cold error path
	}
	start := w.eng.Now()
	if w.busyUntil > start {
		start = w.busyUntil
	}
	ser := w.SerializeTime(data.Len())
	w.busyUntil = start + ser
	arrive := w.busyUntil + w.prop

	w.seq++
	w.stats.Frames++
	w.stats.Bits += uint64(data.Len()) * 8

	// A dead wire swallows the frame: serialization time was spent, the
	// arrival never happens. No event is scheduled, so a machine whose
	// traffic all dies here quiesces instead of spinning.
	if w.dead {
		w.stats.Dropped++
		return arrive, nil
	}

	// Cross-shard wire: the frame leaves this shard by value through the
	// cluster mailbox, timed at its modelled arrival. Fault injection
	// mutates the wire's scratch slot (tx-side state) rather than a stack
	// frame, keeping the path allocation-free.
	if w.rxEng != w.eng {
		w.xmit = Frame{Wire: data, Seq: w.seq}
		if w.fault != nil && w.fault(&w.xmit) {
			w.stats.Corrupted++
		}
		w.eng.CrossPayload(w.rxEng, arrive, w, 0, packFrame(&w.xmit))
		return arrive, nil
	}

	// Push first, then let the fault injector mutate the ring slot in
	// place: taking the address of a stack frame here would defeat escape
	// analysis and put one Frame on the heap per send, fault or no fault.
	w.pushInFlight(Frame{Wire: data, Seq: w.seq})
	if w.fault != nil {
		slot := &w.fly[(w.flyHead+w.flyLen-1)%len(w.fly)]
		if w.fault(slot) {
			w.stats.Corrupted++
		}
	}
	w.eng.AtHandler(arrive, w, wireArrive)
	return arrive, nil
}

// packFrame flattens a frame into a cross-shard payload value: the wire
// sequence number, the byte count, and up to MaxFrameBytes of frame
// bytes packed little-endian into two words.
//qcdoc:noalloc
func packFrame(f *Frame) event.Payload {
	var p event.Payload
	p[0] = f.Seq
	b := f.Bytes()
	p[1] = uint64(len(b))
	for i, x := range b {
		if i < 8 {
			p[2] |= uint64(x) << (8 * i)
		} else {
			p[3] |= uint64(x) << (8 * (i - 8))
		}
	}
	return p
}

// unpackFrame inverts packFrame on the receiving shard.
//qcdoc:noalloc
func unpackFrame(p event.Payload) Frame {
	n := int(p[1])
	var buf [scupkt.MaxFrameBytes]byte
	for i := 0; i < n; i++ {
		if i < 8 {
			buf[i] = byte(p[2] >> (8 * i))
		} else {
			buf[i] = byte(p[3] >> (8 * (i - 8)))
		}
	}
	return Frame{Wire: scupkt.WireOf(buf[:n]), Seq: p[0]}
}

// HandlePayload receives one cross-shard frame on the receiver's
// engine; it implements event.PayloadHandler and is not meant to be
// called directly. The handler deferral mirrors HandleEvent's arrive →
// handle staging so intra-timestamp ordering matches the same-shard
// path.
//qcdoc:noalloc
func (w *Wire) HandlePayload(_ uint64, p event.Payload) {
	f := unpackFrame(p)
	if w.handler == nil {
		w.rx.Put(f)
		return
	}
	// On a cross-shard wire the transmitter never touches the in-flight
	// ring, so the receive side reuses it as its pending-frame ring.
	w.pushInFlight(f)
	w.rxEng.AtHandler(w.rxEng.Now(), w, wireHandle)
}

// HandleEvent dispatches the wire's delivery pipeline stages; it
// implements event.Handler and is not meant to be called directly.
// Arrival events fire in send order (FIFO serialization), so each stage
// operates on the in-flight ring's head.
//qcdoc:noalloc
func (w *Wire) HandleEvent(stage uint64) {
	switch stage {
	case wireArrive:
		if w.handler == nil {
			w.rx.Put(w.popInFlight())
			return
		}
		w.eng.AtHandler(w.eng.Now(), w, wireHandle)
	case wireHandle:
		w.handler(w.popInFlight())
	}
}

//qcdoc:noalloc
func (w *Wire) pushInFlight(f Frame) {
	if w.flyLen == len(w.fly) {
		w.growInFlight()
	}
	w.fly[(w.flyHead+w.flyLen)%len(w.fly)] = f
	w.flyLen++
}

//qcdoc:noalloc
func (w *Wire) popInFlight() Frame {
	f := w.fly[w.flyHead]
	w.flyHead = (w.flyHead + 1) % len(w.fly)
	w.flyLen--
	return f
}

func (w *Wire) growInFlight() {
	grown := make([]Frame, max(4, 2*len(w.fly)))
	for i := 0; i < w.flyLen; i++ {
		grown[i] = w.fly[(w.flyHead+i)%len(w.fly)]
	}
	w.fly = grown
	w.flyHead = 0
}

// AdoptRing hands the wire a recycled in-flight ring to use as its
// backing array (machine.Pool recycles rings across machine builds so a
// fleet doesn't re-grow every wire's ring from nothing). Frames are
// pure values — a ring carries no references — so a previous machine's
// ring is safe to adopt as-is. No-op once frames are in flight or on an
// empty ring.
func (w *Wire) AdoptRing(ring []Frame) {
	if len(ring) > 0 && w.flyLen == 0 {
		w.fly = ring
		w.flyHead = 0
	}
}

// ReleaseRing detaches and returns the wire's in-flight ring for
// recycling. The wire must be finished (its engine shut down); it is
// left with no ring and would re-grow from scratch if used again.
func (w *Wire) ReleaseRing() []Frame {
	r := w.fly
	w.fly, w.flyHead, w.flyLen = nil, 0, 0
	return r
}

// OnFrame attaches a continuation-tier receiver: every arriving frame is
// handed to fn at its arrival time, with no receiver process or queue in
// between. Frames already queued drain into fn in arrival order, in one
// event at the current time — the same timing a receiver process spawned
// now would observe. Attaching a handler replaces Recv; a wire has one
// receiver, on one tier or the other.
func (w *Wire) OnFrame(fn func(Frame)) {
	w.handler = fn
	if w.rx.Len() == 0 {
		return
	}
	w.rxEng.At(w.rxEng.Now(), func() {
		for {
			f, ok := w.rx.TryGet()
			if !ok {
				return
			}
			fn(f)
		}
	})
}

// Recv blocks the process until the next frame arrives.
func (w *Wire) Recv(p *event.Proc) Frame { return w.rx.Get(p) }

// TryRecv returns the next frame if one has arrived.
func (w *Wire) TryRecv() (Frame, bool) { return w.rx.TryGet() }

// Busy reports whether the transmitter is still serializing.
func (w *Wire) Busy() bool { return w.busyUntil > w.eng.Now() }

// FlipBitOnce returns a FaultFunc that flips the given bit of frame
// number seq exactly once — the single-bit-error scenario of §2.2 that
// the parity check must catch and the window protocol must repair.
func FlipBitOnce(seq uint64, bit int) FaultFunc {
	done := false
	return func(f *Frame) bool {
		if done || f.Seq != seq || f.Len() == 0 {
			return false
		}
		done = true
		f.FlipBit(bit)
		return true
	}
}

// FlipBitEvery returns a FaultFunc that corrupts every n-th frame,
// flipping a payload bit derived from the frame number. Used for soak
// tests of the resend path.
func FlipBitEvery(n uint64) FaultFunc {
	if n == 0 {
		n = 1
	}
	return func(f *Frame) bool {
		if f.Seq%n != 0 || f.Len() == 0 {
			return false
		}
		f.FlipBit(int(f.Seq))
		return true
	}
}

// CorruptBetween returns a FaultFunc modelling a burst error: every
// frame launched while the simulated clock is in [from, to) is
// corrupted. Sustained corruption starves the window protocol of
// acknowledgement progress, which is what drives the SCU into link
// re-training rather than the single-resend path.
func CorruptBetween(eng *event.Engine, from, to event.Time) FaultFunc {
	return func(f *Frame) bool {
		now := eng.Now()
		if now < from || now >= to || f.Len() == 0 {
			return false
		}
		f.FlipBit(int(f.Seq))
		return true
	}
}
