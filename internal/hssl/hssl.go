// Package hssl models the IBM High Speed Serial Link controllers that
// carry the QCDOC mesh network (§2.2): bit-serial, uni-directional wires
// running at the processor clock (target 500 MHz), with a power-on
// training sequence that establishes sampling times and byte boundaries,
// idle bytes when no data flows, and — for the fault-injection
// experiments — a hook that corrupts frames in flight.
//
// The motherboard provides a matched-impedance path with no redrive, so
// propagation is a small fixed time-of-flight; dense packaging keeps it
// to a few nanoseconds even through metres of cable (§1, §2.4).
package hssl

import (
	"errors"
	"fmt"

	"qcdoc/internal/event"
)

// DefaultClock is the paper's target link speed: the links run at the
// same clock as the processor.
const DefaultClock = 500 * event.MHz

// DefaultPropagation is the modelled time-of-flight between neighbouring
// ASICs through motherboard traces and external cables. Dense packaging
// keeps this small; 5 ns corresponds to about a metre of trace+cable.
const DefaultPropagation = 5 * event.Nanosecond

// TrainingBytes is the length of the known byte sequence the HSSL
// controllers exchange after reset to lock sampling phase and byte
// framing.
const TrainingBytes = 64

// Frame is one serialized packet in flight on a wire.
type Frame struct {
	Bytes []byte
	Seq   uint64 // monotone per-wire frame number, used by fault injectors
}

// FaultFunc may mutate a frame in flight (it receives its own copy and
// returns the possibly-corrupted bytes). A nil FaultFunc means a clean
// wire.
type FaultFunc func(f Frame) []byte

// Stats counts wire activity.
type Stats struct {
	Frames    uint64
	Bits      uint64
	Corrupted uint64 // frames altered by the fault injector
}

// Wire is one uni-directional bit-serial link between two neighbouring
// nodes. Frames are serialized at the link clock (one bit per cycle),
// then arrive at the far end after the propagation delay. Serialization
// is strictly FIFO: a frame cannot start until the previous one has left
// the transmitter.
type Wire struct {
	eng     *event.Engine
	name    string
	clock   event.Hz
	prop    event.Time
	rx      *event.Queue[Frame]
	handler func(Frame) // continuation-tier receiver; bypasses rx when set
	trained bool

	busyUntil event.Time
	seq       uint64
	fault     FaultFunc
	stats     Stats
}

// NewWire creates a wire on the engine. clock is the serial bit rate;
// prop the time-of-flight to the receiver.
func NewWire(eng *event.Engine, name string, clock event.Hz, prop event.Time) *Wire {
	return &Wire{
		eng:   eng,
		name:  name,
		clock: clock,
		prop:  prop,
		rx:    event.NewQueue[Frame](eng, "hssl "+name),
	}
}

// SetFault installs (or clears, with nil) the fault injector.
func (w *Wire) SetFault(f FaultFunc) { w.fault = f }

// Stats returns a copy of the wire's counters.
func (w *Wire) Stats() Stats { return w.stats }

// Name returns the wire's name.
func (w *Wire) Name() string { return w.name }

// Clock returns the wire's bit clock.
func (w *Wire) Clock() event.Hz { return w.clock }

// ErrNotTrained is returned when data is sent before link training.
var ErrNotTrained = errors.New("hssl: link not trained")

// TrainTime is the duration of the power-on training handshake: the
// serialization time of the training pattern plus one propagation delay.
func (w *Wire) TrainTime() event.Time {
	return w.clock.Cycles(int64(TrainingBytes*8)) + w.prop
}

// Train performs the power-on training handshake: the transmitter sends
// the known TrainingBytes sequence so the receiver can lock its sampling
// phase and byte boundaries. Takes the serialization time of the training
// pattern plus one propagation delay.
func (w *Wire) Train(p *event.Proc) {
	p.Sleep(w.TrainTime())
	w.trained = true
}

// TrainAsync is the continuation-tier Train: the wire becomes trained
// after TrainTime, then done (if non-nil) runs. The machine layer chains
// these to train a node's links serially without a trainer process.
func (w *Wire) TrainAsync(done func()) {
	w.eng.After(w.TrainTime(), func() {
		w.trained = true
		if done != nil {
			done()
		}
	})
}

// Trained reports whether the wire has completed training.
func (w *Wire) Trained() bool { return w.trained }

// Reset drops training (e.g. on machine reset); in-flight frames are
// still delivered, matching a real wire where bits already launched
// arrive regardless.
func (w *Wire) Reset() { w.trained = false }

// SerializeTime returns how long the given frame occupies the transmitter.
func (w *Wire) SerializeTime(nBytes int) event.Time {
	return w.clock.Cycles(int64(nBytes) * 8)
}

// Send launches a frame onto the wire. It returns the time at which the
// frame will have fully arrived at the receiver. Send never blocks the
// caller: the SCU hardware queues into the serializer; flow control
// happens one layer up via the ack window. An untrained wire rejects
// traffic.
func (w *Wire) Send(frame []byte) (event.Time, error) {
	if !w.trained {
		return 0, fmt.Errorf("%w: %s", ErrNotTrained, w.name)
	}
	start := w.eng.Now()
	if w.busyUntil > start {
		start = w.busyUntil
	}
	ser := w.SerializeTime(len(frame))
	w.busyUntil = start + ser
	arrive := w.busyUntil + w.prop

	w.seq++
	f := Frame{Bytes: append([]byte(nil), frame...), Seq: w.seq}
	if w.fault != nil {
		mutated := w.fault(f)
		if !equalBytes(mutated, f.Bytes) {
			w.stats.Corrupted++
		}
		f.Bytes = mutated
	}
	w.stats.Frames++
	w.stats.Bits += uint64(len(frame)) * 8

	w.eng.At(arrive, func() { w.deliver(f) })
	return arrive, nil
}

// deliver hands an arrived frame to the receiver: to the continuation-
// tier handler when one is attached, otherwise into the rx queue for a
// coroutine receiver. The handler runs in its own event at the arrival
// time — the same one-event deferral a queued frame gets between Put and
// the receiving process's wake — so intra-timestamp event ordering (and
// with it, frame serialization order on shared return wires) is
// identical across the two tiers.
func (w *Wire) deliver(f Frame) {
	if w.handler != nil {
		w.eng.At(w.eng.Now(), func() { w.handler(f) })
		return
	}
	w.rx.Put(f)
}

// OnFrame attaches a continuation-tier receiver: every arriving frame is
// handed to fn at its arrival time, with no receiver process or queue in
// between. Frames already queued drain into fn in arrival order, in one
// event at the current time — the same timing a receiver process spawned
// now would observe. Attaching a handler replaces Recv; a wire has one
// receiver, on one tier or the other.
func (w *Wire) OnFrame(fn func(Frame)) {
	w.handler = fn
	if w.rx.Len() == 0 {
		return
	}
	w.eng.At(w.eng.Now(), func() {
		for {
			f, ok := w.rx.TryGet()
			if !ok {
				return
			}
			fn(f)
		}
	})
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Recv blocks the process until the next frame arrives.
func (w *Wire) Recv(p *event.Proc) Frame { return w.rx.Get(p) }

// TryRecv returns the next frame if one has arrived.
func (w *Wire) TryRecv() (Frame, bool) { return w.rx.TryGet() }

// Busy reports whether the transmitter is still serializing.
func (w *Wire) Busy() bool { return w.busyUntil > w.eng.Now() }

// FlipBitOnce returns a FaultFunc that flips the given bit of frame
// number seq exactly once — the single-bit-error scenario of §2.2 that
// the parity check must catch and the window protocol must repair.
func FlipBitOnce(seq uint64, bit int) FaultFunc {
	done := false
	return func(f Frame) []byte {
		if done || f.Seq != seq {
			return f.Bytes
		}
		done = true
		out := append([]byte(nil), f.Bytes...)
		if n := len(out) * 8; n > 0 {
			b := bit % n
			out[b/8] ^= 1 << (b % 8)
		}
		return out
	}
}

// FlipBitEvery returns a FaultFunc that corrupts every n-th frame,
// flipping a payload bit derived from the frame number. Used for soak
// tests of the resend path.
func FlipBitEvery(n uint64) FaultFunc {
	if n == 0 {
		n = 1
	}
	return func(f Frame) []byte {
		if f.Seq%n != 0 {
			return f.Bytes
		}
		out := append([]byte(nil), f.Bytes...)
		if len(out) > 0 {
			bit := int(f.Seq) % (len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		}
		return out
	}
}
