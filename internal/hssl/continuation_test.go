package hssl

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/scupkt"
)

// TestTrainAsyncMatchesTrain verifies the continuation-tier training
// takes exactly the coroutine path's time and leaves the wire trained.
func TestTrainAsyncMatchesTrain(t *testing.T) {
	eng := event.New()
	w := NewWire(eng, "w", DefaultClock, DefaultPropagation)
	var doneAt event.Time
	w.TrainAsync(func() { doneAt = eng.Now() })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !w.Trained() {
		t.Fatal("wire untrained after TrainAsync")
	}
	if doneAt != w.TrainTime() {
		t.Fatalf("trained at %v, want %v", doneAt, w.TrainTime())
	}

	eng2 := event.New()
	w2 := NewWire(eng2, "w2", DefaultClock, DefaultPropagation)
	var procAt event.Time
	eng2.Spawn("train", func(p *event.Proc) {
		w2.Train(p)
		procAt = p.Now()
	})
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if procAt != doneAt {
		t.Fatalf("tiers disagree on training time: %v vs %v", doneAt, procAt)
	}
}

// TestOnFrameDelivery checks the continuation-tier receiver: frames
// arrive at the handler at the same times a coroutine receiver would see
// them, and frames queued before the handler attaches drain in order.
func TestOnFrameDelivery(t *testing.T) {
	eng := event.New()
	w := NewWire(eng, "w", DefaultClock, 0)
	w.TrainAsync(nil)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Two frames launched before any receiver exists.
	if _, err := w.Send(scupkt.WireOf([]byte{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Send(scupkt.WireOf([]byte{2})); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	var got []byte
	w.OnFrame(func(f Frame) { got = append(got, f.Bytes()[0]) })
	// A third frame arrives after the handler attaches.
	if _, err := w.Send(scupkt.WireOf([]byte{3})); err != nil {
		t.Fatal(err)
	}
	var arriveAt event.Time
	arriveAt, _ = w.Send(scupkt.WireOf([]byte{4}))
	var lastAt event.Time
	w.handler = func(f Frame) {
		got = append(got, f.Bytes()[0])
		lastAt = eng.Now()
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("frames = %v", got)
	}
	if lastAt != arriveAt {
		t.Fatalf("last frame handled at %v, arrival %v", lastAt, arriveAt)
	}
}
