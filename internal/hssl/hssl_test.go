package hssl

import (
	"errors"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/scupkt"
)

func trainedWire(e *event.Engine) *Wire {
	w := NewWire(e, "test", DefaultClock, DefaultPropagation)
	e.Spawn("trainer", func(p *event.Proc) { w.Train(p) })
	if err := e.RunAll(); err != nil {
		panic(err)
	}
	return w
}

func TestUntrainedRejects(t *testing.T) {
	e := event.New()
	w := NewWire(e, "w", DefaultClock, DefaultPropagation)
	if _, err := w.Send(scupkt.WireOf([]byte{1, 2, 3})); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainingTakesTime(t *testing.T) {
	e := event.New()
	w := NewWire(e, "w", DefaultClock, DefaultPropagation)
	var doneAt event.Time
	e.Spawn("trainer", func(p *event.Proc) {
		w.Train(p)
		doneAt = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := DefaultClock.Cycles(TrainingBytes*8) + DefaultPropagation
	if doneAt != want {
		t.Fatalf("trained at %v, want %v", doneAt, want)
	}
	if !w.Trained() {
		t.Fatal("not trained")
	}
}

func TestSerializationTiming(t *testing.T) {
	// A 9-byte frame at 500 MHz is 72 bits x 2 ns = 144 ns on the wire,
	// plus 5 ns of flight.
	e := event.New()
	w := trainedWire(e)
	start := e.Now()
	arrive, err := w.Send(scupkt.WireOf(make([]byte, 9)))
	if err != nil {
		t.Fatal(err)
	}
	want := start + 144*event.Nanosecond + DefaultPropagation
	if arrive != want {
		t.Fatalf("arrive = %v, want %v", arrive, want)
	}
	var gotAt event.Time
	e.Spawn("rx", func(p *event.Proc) {
		f := w.Recv(p)
		gotAt = p.Now()
		if f.Len() != 9 {
			t.Errorf("frame len %d", f.Len())
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if gotAt != want {
		t.Fatalf("received at %v, want %v", gotAt, want)
	}
}

func TestFIFOAndBackToBackSerialization(t *testing.T) {
	// Two frames sent at once serialize back to back, not in parallel.
	e := event.New()
	w := trainedWire(e)
	base := e.Now()
	a1, _ := w.Send(scupkt.WireOf(make([]byte, 9)))
	a2, _ := w.Send(scupkt.WireOf(make([]byte, 9)))
	ser := w.SerializeTime(9)
	if a1 != base+ser+DefaultPropagation {
		t.Fatalf("first frame at %v", a1)
	}
	if a2 != base+2*ser+DefaultPropagation {
		t.Fatalf("second frame at %v, want serialized after first", a2)
	}
	var order []uint64
	e.Spawn("rx", func(p *event.Proc) {
		for i := 0; i < 2; i++ {
			order = append(order, w.Recv(p).Seq)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestPayloadIntegrity(t *testing.T) {
	e := event.New()
	w := trainedWire(e)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	frame := scupkt.WireOf(payload)
	if _, err := w.Send(frame); err != nil {
		t.Fatal(err)
	}
	payload[0] = 0   // frames travel by value; the source buffer is dead at Send
	frame.FlipBit(1) // and so is the caller's Wire value
	var got []byte
	e.Spawn("rx", func(p *event.Proc) {
		f := w.Recv(p)
		got = append(got, f.Bytes()...)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestBandwidthMatchesClock(t *testing.T) {
	// 1000 9-byte frames at 500 Mbit/s = 72000 bits = 144 us of wire time.
	e := event.New()
	w := trainedWire(e)
	start := e.Now()
	var last event.Time
	for i := 0; i < 1000; i++ {
		last, _ = w.Send(scupkt.WireOf(make([]byte, 9)))
	}
	want := start + DefaultClock.Cycles(1000*72) + DefaultPropagation
	if last != want {
		t.Fatalf("last arrival %v, want %v", last, want)
	}
	// Payload bandwidth: 8 bytes per 72 bits -> 55.6 MB/s per wire
	// direction; 24 wires -> 1.33 GB/s aggregate (checked in scupkt).
	bytesPerSec := 8.0 * 1000 / (DefaultClock.Cycles(1000 * 72)).Seconds()
	if bytesPerSec < 55e6 || bytesPerSec > 56e6 {
		t.Fatalf("payload bandwidth %.3g B/s", bytesPerSec)
	}
}

func TestFaultInjectionOnce(t *testing.T) {
	e := event.New()
	w := trainedWire(e)
	w.SetFault(FlipBitOnce(2, 3))
	for i := 0; i < 3; i++ {
		if _, err := w.Send(scupkt.WireOf([]byte{0x00})); err != nil {
			t.Fatal(err)
		}
	}
	var frames []Frame
	e.Spawn("rx", func(p *event.Proc) {
		for i := 0; i < 3; i++ {
			frames = append(frames, w.Recv(p))
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if frames[0].Bytes()[0] != 0 {
		t.Fatal("frame 1 corrupted")
	}
	if frames[1].Bytes()[0] != 1<<3 {
		t.Fatalf("frame 2 = %#x, want bit 3 flipped", frames[1].Bytes()[0])
	}
	if frames[2].Bytes()[0] != 0 {
		t.Fatal("frame 3 corrupted")
	}
	if w.Stats().Corrupted != 1 {
		t.Fatalf("corrupted count = %d", w.Stats().Corrupted)
	}
}

func TestFaultInjectionEvery(t *testing.T) {
	e := event.New()
	w := trainedWire(e)
	w.SetFault(FlipBitEvery(4))
	for i := 0; i < 16; i++ {
		w.Send(scupkt.WireOf([]byte{0, 0}))
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Corrupted; got != 4 {
		t.Fatalf("corrupted = %d, want 4", got)
	}
	if got := w.Stats().Frames; got != 16 {
		t.Fatalf("frames = %d", got)
	}
	if got := w.Stats().Bits; got != 16*16 {
		t.Fatalf("bits = %d", got)
	}
}

func TestReset(t *testing.T) {
	e := event.New()
	w := trainedWire(e)
	w.Reset()
	if w.Trained() {
		t.Fatal("still trained after reset")
	}
	if _, err := w.Send(scupkt.WireOf([]byte{1})); !errors.Is(err, ErrNotTrained) {
		t.Fatalf("err = %v", err)
	}
}
