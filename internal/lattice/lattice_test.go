package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qcdoc/internal/latmath"
)

func TestIndexRoundTrip(t *testing.T) {
	l := Shape4{4, 3, 2, 5}
	for idx := 0; idx < l.Volume(); idx++ {
		s := l.SiteOf(idx)
		if l.Index(s) != idx {
			t.Fatalf("round trip failed at %d -> %v", idx, s)
		}
	}
}

func TestNeighborWrap(t *testing.T) {
	l := Shape4{4, 4, 4, 4}
	s := Site{3, 0, 2, 3}
	if n := l.Neighbor(s, 0, +1); n[0] != 0 {
		t.Fatalf("wrap fwd: %v", n)
	}
	if n := l.Neighbor(s, 1, -1); n[1] != 3 {
		t.Fatalf("wrap bwd: %v", n)
	}
	if n := l.Neighbor(l.Neighbor(s, 2, +1), 2, -1); n != s {
		t.Fatal("neighbor not invertible")
	}
	if n := l.Hop(s, 3, 5); n[3] != (3+5)%4 {
		t.Fatalf("hop: %v", n)
	}
	if n := l.Hop(s, 0, -3); n[0] != 0 {
		t.Fatalf("negative hop: %v", n)
	}
}

func TestParityCheckerboard(t *testing.T) {
	l := Shape4{4, 4, 4, 4}
	even, odd := 0, 0
	for idx := 0; idx < l.Volume(); idx++ {
		s := l.SiteOf(idx)
		p := Parity(s)
		if p == 0 {
			even++
		} else {
			odd++
		}
		// Every neighbour has opposite parity.
		for mu := 0; mu < Ndim; mu++ {
			if Parity(l.Neighbor(s, mu, +1)) == p {
				t.Fatalf("neighbour of %v has same parity", s)
			}
		}
	}
	if even != odd {
		t.Fatalf("parity imbalance: %d/%d", even, odd)
	}
}

func TestColdPlaquette(t *testing.T) {
	g := NewGaugeField(Shape4{4, 4, 4, 4})
	if p := g.Plaquette(); math.Abs(p-1) > 1e-12 {
		t.Fatalf("cold plaquette = %v", p)
	}
}

func TestHotPlaquetteNearZero(t *testing.T) {
	g := NewGaugeField(Shape4{4, 4, 4, 4})
	g.Randomize(123)
	p := g.Plaquette()
	if math.Abs(p) > 0.08 {
		t.Fatalf("hot plaquette = %v, want ~0", p)
	}
	// All links remain SU(3).
	for _, u := range g.U[:32] {
		if !u.IsSU3(1e-9) {
			t.Fatal("randomized link not SU(3)")
		}
	}
}

func TestRandomizeDeterministicAndSeedDependent(t *testing.T) {
	a := NewGaugeField(Shape4{2, 2, 2, 2})
	b := NewGaugeField(Shape4{2, 2, 2, 2})
	a.Randomize(7)
	b.Randomize(7)
	if !a.Equal(b) {
		t.Fatal("same seed, different fields")
	}
	b.Randomize(8)
	if a.Equal(b) {
		t.Fatal("different seed, same field")
	}
}

func TestGaugeInvarianceOfPlaquette(t *testing.T) {
	// The plaquette is invariant under U_mu(x) -> g(x) U_mu(x) g(x+mu)†.
	l := Shape4{2, 2, 2, 4}
	g := NewGaugeField(l)
	g.Randomize(31)
	before := g.Plaquette()
	// Random gauge transform.
	rot := make([]latmath.Mat3, l.Volume())
	rng := rand.New(rand.NewSource(5))
	for i := range rot {
		rot[i] = latmath.RandomSU3(rng)
	}
	tr := g.Clone()
	for idx := 0; idx < l.Volume(); idx++ {
		x := l.SiteOf(idx)
		for mu := 0; mu < Ndim; mu++ {
			xn := l.Neighbor(x, mu, +1)
			tr.SetLink(x, mu, rot[idx].Mul(g.Link(x, mu)).Mul(rot[l.Index(xn)].Dagger()))
		}
	}
	after := tr.Plaquette()
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("plaquette not gauge invariant: %v vs %v", before, after)
	}
}

func TestStapleConsistentWithPlaquette(t *testing.T) {
	// Re tr [U_mu(x) Staple(x,mu)†] equals the sum of the 2*(Ndim-1)
	// plaquettes containing U_mu(x)... for the upper staples this is
	// direct; validate via the action difference of a small link change.
	l := Shape4{2, 2, 2, 2}
	g := NewGaugeField(l)
	g.Randomize(77)
	x := Site{1, 0, 1, 0}
	mu := 2
	staple := g.Staple(x, mu)
	// S_link = -(1/3) Re tr U * staple† summed; changing U changes the
	// total action by the same amount computed from all plaquettes.
	actionFromPlaquettes := func(gf *GaugeField) float64 {
		var sum float64
		for idx := 0; idx < l.Volume(); idx++ {
			s := l.SiteOf(idx)
			for a := 0; a < Ndim; a++ {
				for b := a + 1; b < Ndim; b++ {
					sum += gf.PlaquetteAt(s, a, b)
				}
			}
		}
		return sum
	}
	before := actionFromPlaquettes(g)
	reStapleBefore := g.Link(x, mu).Mul(staple).ReTrace()
	// Replace the link.
	rng := rand.New(rand.NewSource(9))
	newU := latmath.RandomSU3(rng)
	g2 := g.Clone()
	g2.SetLink(x, mu, newU)
	after := actionFromPlaquettes(g2)
	reStapleAfter := newU.Mul(staple).ReTrace()
	// The change in total plaquette sum equals the change in
	// Re tr U staple† (all other plaquettes untouched).
	if math.Abs((after-before)-(reStapleAfter-reStapleBefore)) > 1e-9 {
		t.Fatalf("staple inconsistent with plaquette sum: %v vs %v",
			after-before, reStapleAfter-reStapleBefore)
	}
}

func TestFermionFieldBLAS(t *testing.T) {
	l := Shape4{2, 2, 2, 2}
	f := NewFermionField(l)
	g := NewFermionField(l)
	f.Gaussian(1)
	g.Gaussian(2)
	n2 := f.Norm2()
	if math.Abs(real(f.Dot(f))-n2) > 1e-9 {
		t.Fatal("dot/norm mismatch")
	}
	h := f.Clone()
	h.AXPY(complex(2, 0), g)
	// |f+2g|^2 = |f|^2 + 4Re<f,g> + 4|g|^2
	want := n2 + 4*real(f.Dot(g)) + 4*g.Norm2()
	if math.Abs(h.Norm2()-want) > 1e-8*want {
		t.Fatalf("axpy norm = %v, want %v", h.Norm2(), want)
	}
	h.Scale(0.5)
	if math.Abs(h.Norm2()-want/4) > 1e-8*want {
		t.Fatal("scale wrong")
	}
}

func TestColorFieldBLAS(t *testing.T) {
	l := Shape4{2, 2, 2, 2}
	f := NewColorField(l)
	g := NewColorField(l)
	f.Gaussian(3)
	g.Gaussian(4)
	if math.Abs(real(f.Dot(f))-f.Norm2()) > 1e-9 {
		t.Fatal("dot/norm mismatch")
	}
	h := f.Clone()
	h.AXPY(-1, g)
	want := f.Norm2() - 2*real(f.Dot(g)) + g.Norm2()
	if math.Abs(h.Norm2()-want) > 1e-8*math.Abs(want) {
		t.Fatal("axpy wrong")
	}
	h.Scale(2)
	if math.Abs(h.Norm2()-4*want) > 1e-7*math.Abs(want) {
		t.Fatal("scale wrong")
	}
}

func TestDecomp(t *testing.T) {
	d, err := NewDecomp(Shape4{16, 16, 16, 32}, Shape4{4, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Nodes() != 64 {
		t.Fatalf("nodes = %d", d.Nodes())
	}
	if d.Local != (Shape4{4, 8, 8, 8}) {
		t.Fatalf("local = %v", d.Local)
	}
	if d.LocalVolume() != 2048 {
		t.Fatalf("local volume = %d", d.LocalVolume())
	}
	// Round trip.
	g := Site{7, 9, 15, 31}
	node, local := d.NodeOf(g)
	if d.GlobalOf(node, local) != g {
		t.Fatal("NodeOf/GlobalOf not inverse")
	}
	// Uneven division rejected.
	if _, err := NewDecomp(Shape4{16, 16, 16, 32}, Shape4{3, 2, 2, 4}); err == nil {
		t.Fatal("uneven decomposition accepted")
	}
}

func TestDecompQuick(t *testing.T) {
	d, _ := NewDecomp(Shape4{8, 8, 8, 16}, Shape4{2, 2, 2, 4})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Site{r.Intn(8), r.Intn(8), r.Intn(8), r.Intn(16)}
		node, local := d.NodeOf(g)
		for mu := 0; mu < Ndim; mu++ {
			if local[mu] < 0 || local[mu] >= d.Local[mu] {
				return false
			}
			if node[mu] < 0 || node[mu] >= d.Grid[mu] {
				return false
			}
		}
		return d.GlobalOf(node, local) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaceSites(t *testing.T) {
	l := Shape4{4, 4, 4, 4}
	for mu := 0; mu < Ndim; mu++ {
		lo := FaceSites(l, mu, 0)
		hi := FaceSites(l, mu, 1)
		if len(lo) != FaceVolume(l, mu) || len(hi) != FaceVolume(l, mu) {
			t.Fatalf("face sizes %d/%d, want %d", len(lo), len(hi), FaceVolume(l, mu))
		}
		for _, idx := range lo {
			if l.SiteOf(idx)[mu] != 0 {
				t.Fatal("low face site not on boundary")
			}
		}
		for _, idx := range hi {
			if l.SiteOf(idx)[mu] != l[mu]-1 {
				t.Fatal("high face site not on boundary")
			}
		}
		// Ascending order (the DMA descriptor contract).
		for i := 1; i < len(lo); i++ {
			if lo[i] <= lo[i-1] {
				t.Fatal("face sites not ascending")
			}
		}
	}
	if FaceVolume(l, 0) != 64 {
		t.Fatalf("face volume = %d", FaceVolume(l, 0))
	}
}
