package lattice

import "fmt"

// Decomp maps a global lattice onto a 4-D grid of processing nodes: the
// trivial, perfectly load-balanced decomposition the paper describes in
// §1 ("no load balancing is needed beyond the initial trivial mapping of
// the physics coordinate grid to the machine mesh").
type Decomp struct {
	Global Shape4 // global lattice extents
	Grid   Shape4 // nodes per dimension (the folded machine's 4-D shape)
	Local  Shape4 // sites per node per dimension
}

// NewDecomp validates that the grid divides the global lattice evenly.
func NewDecomp(global, grid Shape4) (Decomp, error) {
	if !global.Valid() || !grid.Valid() {
		return Decomp{}, fmt.Errorf("lattice: invalid shapes %v / %v", global, grid)
	}
	var local Shape4
	for mu := 0; mu < Ndim; mu++ {
		if global[mu]%grid[mu] != 0 {
			return Decomp{}, fmt.Errorf("lattice: grid %v does not divide lattice %v in dimension %d",
				grid, global, mu)
		}
		local[mu] = global[mu] / grid[mu]
	}
	return Decomp{Global: global, Grid: grid, Local: local}, nil
}

// Nodes is the number of processing nodes.
func (d Decomp) Nodes() int { return d.Grid.Volume() }

// LocalVolume is the number of sites per node.
func (d Decomp) LocalVolume() int { return d.Local.Volume() }

// NodeOf returns the grid coordinate owning a global site and the
// site's local coordinate on that node.
func (d Decomp) NodeOf(g Site) (node Site, local Site) {
	for mu := 0; mu < Ndim; mu++ {
		node[mu] = g[mu] / d.Local[mu]
		local[mu] = g[mu] % d.Local[mu]
	}
	return
}

// GlobalOf inverts NodeOf.
func (d Decomp) GlobalOf(node, local Site) Site {
	var g Site
	for mu := 0; mu < Ndim; mu++ {
		g[mu] = node[mu]*d.Local[mu] + local[mu]
	}
	return g
}

// FaceSites lists the local lexicographic indices of the boundary face
// in direction mu at the given end (0 = low boundary x_mu==0, 1 = high
// boundary x_mu==L-1), in ascending index order. These are the sites
// whose projected spinors a Dslash halo exchange ships to the
// neighbouring node; the ordering is the contract between the packing
// code and the SCU DMA descriptors.
func FaceSites(l Shape4, mu, end int) []int {
	fixed := 0
	if end == 1 {
		fixed = l[mu] - 1
	}
	var out []int
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		if l.SiteOf(idx)[mu] == fixed {
			out = append(out, idx)
		}
	}
	return out
}

// FaceVolume is the number of sites on a face transverse to mu.
func FaceVolume(l Shape4, mu int) int { return l.Volume() / l[mu] }

// LayerSites lists the local lexicographic indices of the sites with
// x_mu == k, in ascending index order — the generalization of FaceSites
// to interior layers, needed by operators with third-nearest-neighbour
// terms (ASQTAD's Naik term ships three boundary layers).
func LayerSites(l Shape4, mu, k int) []int {
	var out []int
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		if l.SiteOf(idx)[mu] == k {
			out = append(out, idx)
		}
	}
	return out
}
