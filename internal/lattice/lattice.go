// Package lattice provides the space-time containers of lattice QCD:
// four-dimensional periodic lattices, SU(3) gauge fields, fermion fields,
// even-odd parity structure, and the decomposition of a global lattice
// across the (folded, four-dimensional) QCDOC machine grid — "each
// processor becomes responsible for the local variables associated with
// a space-time hypercube" (§1).
package lattice

import (
	"fmt"

	"qcdoc/internal/latmath"
	"qcdoc/internal/rng"
)

// Ndim is the space-time dimensionality.
const Ndim = 4

// Shape4 is the extent of a 4-D lattice in x, y, z, t.
type Shape4 [Ndim]int

// Site is a 4-D lattice coordinate.
type Site [Ndim]int

// Volume is the number of sites.
func (s Shape4) Volume() int { return s[0] * s[1] * s[2] * s[3] }

// Valid reports whether all extents are positive.
func (s Shape4) Valid() bool {
	for _, e := range s {
		if e < 1 {
			return false
		}
	}
	return true
}

func (s Shape4) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s[0], s[1], s[2], s[3])
}

// Index converts a site to its lexicographic index (x fastest).
func (s Shape4) Index(c Site) int {
	return ((c[3]*s[2]+c[2])*s[1]+c[1])*s[0] + c[0]
}

// SiteOf inverts Index.
func (s Shape4) SiteOf(idx int) Site {
	var c Site
	c[0] = idx % s[0]
	idx /= s[0]
	c[1] = idx % s[1]
	idx /= s[1]
	c[2] = idx % s[2]
	c[3] = idx / s[2]
	return c
}

// Neighbor returns the site one step along mu (0..3) in direction
// dir (+1/-1), with periodic wrap.
func (s Shape4) Neighbor(c Site, mu, dir int) Site {
	n := c
	n[mu] = (c[mu] + dir + s[mu]) % s[mu]
	return n
}

// Hop returns the site displaced by k steps along mu (periodic).
func (s Shape4) Hop(c Site, mu, k int) Site {
	n := c
	n[mu] = ((c[mu]+k)%s[mu] + s[mu]) % s[mu]
	return n
}

// Parity returns 0 for even sites, 1 for odd ((x+y+z+t) mod 2) — the
// checkerboard used by even-odd preconditioned solvers.
func Parity(c Site) int { return (c[0] + c[1] + c[2] + c[3]) % 2 }

// GaugeField holds one SU(3) link per site per direction: U[mu](x)
// connects x to x+mu.
type GaugeField struct {
	L Shape4
	U []latmath.Mat3 // len = 4*Volume, layout U[4*idx+mu]
}

// NewGaugeField allocates a cold (unit) gauge field.
func NewGaugeField(l Shape4) *GaugeField {
	if !l.Valid() {
		panic(fmt.Sprintf("lattice: invalid shape %v", l))
	}
	g := &GaugeField{L: l, U: make([]latmath.Mat3, Ndim*l.Volume())}
	for i := range g.U {
		g.U[i] = latmath.Identity3()
	}
	return g
}

// Link returns U_mu(x).
func (g *GaugeField) Link(x Site, mu int) latmath.Mat3 {
	return g.U[Ndim*g.L.Index(x)+mu]
}

// SetLink stores U_mu(x).
func (g *GaugeField) SetLink(x Site, mu int, m latmath.Mat3) {
	g.U[Ndim*g.L.Index(x)+mu] = m
}

// Randomize fills the field with Haar-ish random SU(3) links ("hot
// start"). Each link draws from its own site/direction stream, so the
// result is independent of traversal order and machine decomposition.
func (g *GaugeField) Randomize(seed uint64) {
	v := g.L.Volume()
	for idx := 0; idx < v; idx++ {
		for mu := 0; mu < Ndim; mu++ {
			st := rng.New(seed, uint64(idx)*Ndim+uint64(mu))
			g.U[Ndim*idx+mu] = latmath.RandomSU3(st)
		}
	}
}

// Plaquette returns the average plaquette: the mean over sites and
// planes of (1/3) Re tr U_mu(x) U_nu(x+mu) U_mu†(x+nu) U_nu†(x). It is 1
// on a cold configuration and ~0 on a fully random one — the first
// observable of any gauge evolution.
func (g *GaugeField) Plaquette() float64 {
	var sum float64
	v := g.L.Volume()
	for idx := 0; idx < v; idx++ {
		x := g.L.SiteOf(idx)
		for mu := 0; mu < Ndim; mu++ {
			for nu := mu + 1; nu < Ndim; nu++ {
				sum += g.PlaquetteAt(x, mu, nu)
			}
		}
	}
	return sum / (float64(v) * 6 * 3)
}

// PlaquetteAt returns Re tr of the (mu,nu) plaquette at x (un-normalized
// by color).
func (g *GaugeField) PlaquetteAt(x Site, mu, nu int) float64 {
	xmu := g.L.Neighbor(x, mu, +1)
	xnu := g.L.Neighbor(x, nu, +1)
	p := g.Link(x, mu).
		Mul(g.Link(xmu, nu)).
		Mul(g.Link(xnu, mu).Dagger()).
		Mul(g.Link(x, nu).Dagger())
	return p.ReTrace()
}

// Staple returns the sum of the six staples around U_mu(x), in the
// convention where the sum of all plaquettes containing the link equals
// Re tr [U_mu(x) · Staple(x,mu)]. It is the derivative of the Wilson
// gauge action with respect to that link, used by heatbath and HMC
// updates.
func (g *GaugeField) Staple(x Site, mu int) latmath.Mat3 {
	sum := latmath.Zero3()
	for nu := 0; nu < Ndim; nu++ {
		if nu == mu {
			continue
		}
		xmu := g.L.Neighbor(x, mu, +1)
		xnu := g.L.Neighbor(x, nu, +1)
		xmnu := g.L.Neighbor(x, nu, -1)
		xmu_mnu := g.L.Neighbor(xmu, nu, -1)
		// Upper staple: U_nu(x+mu) U_mu†(x+nu) U_nu†(x).
		up := g.Link(xmu, nu).Mul(g.Link(xnu, mu).Dagger()).Mul(g.Link(x, nu).Dagger())
		// Lower staple: U_nu†(x+mu-nu) U_mu†(x-nu) U_nu(x-nu).
		dn := g.Link(xmu_mnu, nu).Dagger().Mul(g.Link(xmnu, mu).Dagger()).Mul(g.Link(xmnu, nu))
		sum = sum.Add(up).Add(dn)
	}
	return sum
}

// Clone deep-copies the field.
func (g *GaugeField) Clone() *GaugeField {
	c := &GaugeField{L: g.L, U: make([]latmath.Mat3, len(g.U))}
	copy(c.U, g.U)
	return c
}

// Equal reports bitwise equality of two fields — the comparison of the
// paper's five-day reproducibility test ("the resulting QCD
// configuration be identical in all bits").
func (g *GaugeField) Equal(o *GaugeField) bool {
	if g.L != o.L || len(g.U) != len(o.U) {
		return false
	}
	for i := range g.U {
		if g.U[i] != o.U[i] {
			return false
		}
	}
	return true
}

// FermionField is a Dirac spinor per site.
type FermionField struct {
	L Shape4
	S []latmath.Spinor
}

// NewFermionField allocates a zero fermion field.
func NewFermionField(l Shape4) *FermionField {
	return &FermionField{L: l, S: make([]latmath.Spinor, l.Volume())}
}

// Gaussian fills with unit-normal noise from per-site streams.
func (f *FermionField) Gaussian(seed uint64) {
	for idx := range f.S {
		st := rng.New(seed, uint64(idx))
		f.S[idx] = latmath.GaussianSpinor(st)
	}
}

// Dot returns Σ_x f(x)† g(x).
func (f *FermionField) Dot(g *FermionField) complex128 {
	var s complex128
	for i := range f.S {
		s += f.S[i].Dot(g.S[i])
	}
	return s
}

// Norm2 returns Σ_x |f(x)|².
func (f *FermionField) Norm2() float64 {
	var s float64
	for i := range f.S {
		s += f.S[i].Norm2()
	}
	return s
}

// AXPY computes f += a*x in place.
func (f *FermionField) AXPY(a complex128, x *FermionField) {
	for i := range f.S {
		f.S[i] = f.S[i].AXPY(a, x.S[i])
	}
}

// Scale multiplies in place.
func (f *FermionField) Scale(a complex128) {
	for i := range f.S {
		f.S[i] = f.S[i].Scale(a)
	}
}

// Copy copies x into f.
func (f *FermionField) Copy(x *FermionField) { copy(f.S, x.S) }

// Clone deep-copies.
func (f *FermionField) Clone() *FermionField {
	c := NewFermionField(f.L)
	copy(c.S, f.S)
	return c
}

// ColorField is a staggered fermion field: one color vector per site.
type ColorField struct {
	L Shape4
	V []latmath.Vec3
}

// NewColorField allocates a zero color field.
func NewColorField(l Shape4) *ColorField {
	return &ColorField{L: l, V: make([]latmath.Vec3, l.Volume())}
}

// Gaussian fills with unit-normal noise.
func (f *ColorField) Gaussian(seed uint64) {
	for idx := range f.V {
		st := rng.New(seed, uint64(idx))
		f.V[idx] = latmath.GaussianVec3(st)
	}
}

// Dot returns Σ_x f(x)† g(x).
func (f *ColorField) Dot(g *ColorField) complex128 {
	var s complex128
	for i := range f.V {
		s += f.V[i].Dot(g.V[i])
	}
	return s
}

// Norm2 returns Σ_x |f(x)|².
func (f *ColorField) Norm2() float64 {
	var s float64
	for i := range f.V {
		s += f.V[i].Norm2()
	}
	return s
}

// AXPY computes f += a*x in place.
func (f *ColorField) AXPY(a complex128, x *ColorField) {
	for i := range f.V {
		f.V[i] = f.V[i].AXPY(a, x.V[i])
	}
}

// Scale multiplies in place.
func (f *ColorField) Scale(a complex128) {
	for i := range f.V {
		f.V[i] = f.V[i].Scale(a)
	}
}

// Clone deep-copies.
func (f *ColorField) Clone() *ColorField {
	c := NewColorField(f.L)
	copy(c.V, f.V)
	return c
}
