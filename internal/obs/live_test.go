package obs_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qcdoc/internal/fleet"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/obs"
)

// TestMetricsScrapeFromLiveCampaign is the service-surface acceptance
// test: an HTTP server scrapes /metrics continuously WHILE an observed
// fleet campaign runs — campaign workers publish from their goroutines,
// scrapers read concurrently (exercised under -race by `make check`) —
// and the final scrape carries the campaign's counters and latency
// summaries.
func TestMetricsScrapeFromLiveCampaign(t *testing.T) {
	srv := &obs.Server{}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := fleet.Sweep(fleet.Spec{
		Machine: geom.MakeShape(2, 2), Global: lattice.Shape4{4, 4, 4, 4},
		Mass: 0.5, Tol: 1e-4, MaxIter: 100, Seed: 1,
	}, []lattice.Shape4{{4, 4, 4, 4}, {4, 4, 4, 8}}, nil, nil)

	// Scrape continuously until the campaign finishes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrapes := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes++
			}
		}
	}()

	var mu sync.Mutex
	done := 0
	var last fleet.Result
	results := fleet.Run(fleet.Config{
		Workers: 2, Pool: machine.NewPool(), Observe: true,
		OnResult: func(i int, r fleet.Result) {
			mu.Lock()
			done++
			srv.PublishFleet(obs.FleetStatus{Total: len(specs), Done: done})
			if r.Err == nil {
				last = r
				srv.PublishMetrics(r.SimTime, r.Snap)
			}
			mu.Unlock()
		},
	}, specs)
	close(stop)
	wg.Wait()

	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("run %q: %v", r.Name, r.Err)
		}
	}
	if scrapes == 0 {
		t.Fatal("no scrapes completed during the campaign")
	}
	if h := last.Hists["machine/gsum_rtt_ps"]; h.Count == 0 {
		t.Fatalf("last result collected no gsum distribution: %+v", h)
	}

	// Final state: the last published snapshot's counters and latency
	// summaries are on the wire.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"qcdoc_machine_scu_words_sent",
		"qcdoc_machine_gsum_rtt_ps_count",
		`qcdoc_machine_cg_iter_ps{quantile="0.99"}`,
		"qcdoc_fleet_runs_done 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("final /metrics missing %q in:\n%s", want, text[:min(len(text), 2000)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
