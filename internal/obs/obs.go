// Package obs is the fleet's service surface: a tiny net/http server
// that exposes the observability plane — Prometheus-text /metrics,
// Chrome-trace /trace, and live campaign progress on /fleet — without
// ever touching the simulation. The simulator side publishes immutable
// snapshots (taken on the engine goroutine through the pull registry,
// DESIGN.md §10/§15) into the server; HTTP handlers only ever read the
// last published copy under an RWMutex. Nothing here holds a reference
// into a live machine, so scraping cannot perturb a run — the zero-
// perturbation contract extends to the wire.
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"qcdoc/internal/event"
	"qcdoc/internal/telemetry"
)

// FleetRun is one campaign run's outcome as shown on /fleet.
type FleetRun struct {
	Name       string `json:"name"`
	Done       bool   `json:"done"`
	Converged  bool   `json:"converged,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	Digest     string `json:"digest,omitempty"`
	Err        string `json:"err,omitempty"`
}

// FleetStatus is the live campaign view served as JSON on /fleet.
type FleetStatus struct {
	Total  int        `json:"total"`
	Done   int        `json:"done"`
	Failed int        `json:"failed"`
	Digest string     `json:"digest,omitempty"`
	Runs   []FleetRun `json:"runs,omitempty"`
	// Hists is the campaign-aggregate latency view (fleet.Aggregate).
	Hists map[string]telemetry.HistogramSnapshot `json:"histograms,omitempty"`
}

// Server holds the last published observation of each kind. The zero
// value is ready to use. Publish methods take ownership of their
// argument — the caller must not mutate it afterwards; handlers read
// it forever.
type Server struct {
	mu       sync.RWMutex
	at       event.Time
	snap     telemetry.Snapshot
	hasSnap  bool
	trace    []byte
	fleet    FleetStatus
	hasFleet bool
}

// PublishMetrics installs a telemetry snapshot (and the simulated time
// it was taken at) as the current /metrics content.
func (s *Server) PublishMetrics(at event.Time, snap telemetry.Snapshot) {
	s.mu.Lock()
	s.at, s.snap, s.hasSnap = at, snap, true
	s.mu.Unlock()
}

// PublishTrace installs a rendered Chrome-trace JSON document as the
// current /trace content.
func (s *Server) PublishTrace(trace []byte) {
	s.mu.Lock()
	s.trace = trace
	s.mu.Unlock()
}

// PublishFleet installs the current campaign status. Called once per
// completed run from the campaign's OnResult hook, then once more with
// the final digest.
func (s *Server) PublishFleet(fs FleetStatus) {
	s.mu.Lock()
	s.fleet, s.hasFleet = fs, true
	s.mu.Unlock()
}

// Handler returns the HTTP mux serving /metrics, /trace, and /fleet.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/fleet", s.handleFleet)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	at, snap, hasSnap := s.at, s.snap, s.hasSnap
	fleet, hasFleet := s.fleet, s.hasFleet
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	if hasSnap {
		renderMetrics(&b, at, snap)
	}
	if hasFleet {
		renderFleetMetrics(&b, fleet)
	}
	w.Write(b.Bytes())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	trace := s.trace
	s.mu.RUnlock()
	if trace == nil {
		http.Error(w, "no trace published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="qcdoc-trace.json"`)
	w.Write(trace)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	fleet, has := s.fleet, s.hasFleet
	s.mu.RUnlock()
	if !has {
		http.Error(w, "no campaign published", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(fleet)
}

// MetricName sanitizes a registry name ("node3/scu/words_sent") into a
// Prometheus metric name ("qcdoc_node3_scu_words_sent").
func MetricName(name string) string {
	var b strings.Builder
	b.WriteString("qcdoc_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderMetrics writes a snapshot in Prometheus text exposition format,
// fully sorted so identical snapshots render identical bytes.
func renderMetrics(b *bytes.Buffer, at event.Time, snap telemetry.Snapshot) {
	fmt.Fprintf(b, "# TYPE qcdoc_sim_time_ps gauge\nqcdoc_sim_time_ps %d\n", uint64(at))
	for _, n := range snap.Names() {
		m := MetricName(n)
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", m, m, snap.Counters[n])
	}
	gnames := make([]string, 0, len(snap.Gauges))
	for n := range snap.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		m := MetricName(n)
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %g\n", m, m, snap.Gauges[n])
	}
	hnames := make([]string, 0, len(snap.Histograms))
	for n := range snap.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		renderHistogram(b, MetricName(n), snap.Histograms[n])
	}
}

// renderHistogram writes one latency distribution as a Prometheus
// summary: quantile-labeled samples plus _sum, _count, and _max.
func renderHistogram(b *bytes.Buffer, m string, h telemetry.HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s summary\n", m)
	fmt.Fprintf(b, "%s{quantile=\"0.5\"} %d\n", m, h.P50)
	fmt.Fprintf(b, "%s{quantile=\"0.95\"} %d\n", m, h.P95)
	fmt.Fprintf(b, "%s{quantile=\"0.99\"} %d\n", m, h.P99)
	fmt.Fprintf(b, "%s_sum %d\n", m, h.Sum)
	fmt.Fprintf(b, "%s_count %d\n", m, h.Count)
	fmt.Fprintf(b, "%s_max %d\n", m, h.Max)
}

// renderFleetMetrics writes the campaign progress counters and the
// campaign-aggregate latency summaries.
func renderFleetMetrics(b *bytes.Buffer, fs FleetStatus) {
	fmt.Fprintf(b, "# TYPE qcdoc_fleet_runs_total gauge\nqcdoc_fleet_runs_total %d\n", fs.Total)
	fmt.Fprintf(b, "# TYPE qcdoc_fleet_runs_done gauge\nqcdoc_fleet_runs_done %d\n", fs.Done)
	fmt.Fprintf(b, "# TYPE qcdoc_fleet_runs_failed gauge\nqcdoc_fleet_runs_failed %d\n", fs.Failed)
	hnames := make([]string, 0, len(fs.Hists))
	for n := range fs.Hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		renderHistogram(b, MetricName("fleet/"+n), fs.Hists[n])
	}
}

// DigestString renders a digest the way /fleet shows it.
func DigestString(d uint64) string { return fmt.Sprintf("%#x", d) }
