package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"qcdoc/internal/telemetry"
)

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"node3/scu/words_sent":     "qcdoc_node3_scu_words_sent",
		"machine/gsum_rtt_ps":      "qcdoc_machine_gsum_rtt_ps",
		"node0/link/X+/resends":    "qcdoc_node0_link_X__resends",
		"machine/link_utilization": "qcdoc_machine_link_utilization",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	var h telemetry.Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Record(v * 1000) //qcdoclint:obs-ok building a fixture snapshot; no handler is serving yet
	}
	snap := telemetry.Snapshot{
		Counters:   map[string]uint64{"node0/scu/words_sent": 42, "machine/scu/resends": 7},
		Gauges:     map[string]float64{"machine/efficiency": 0.44},
		Histograms: map[string]telemetry.HistogramSnapshot{"machine/gsum_rtt_ps": h.Snapshot()},
	}
	var srv Server
	srv.PublishMetrics(12345, snap)
	code, body := get(t, &srv, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"qcdoc_sim_time_ps 12345",
		"qcdoc_node0_scu_words_sent 42",
		"qcdoc_machine_scu_resends 7",
		"qcdoc_machine_efficiency 0.44",
		`qcdoc_machine_gsum_rtt_ps{quantile="0.5"}`,
		"qcdoc_machine_gsum_rtt_ps_count 100",
		"# TYPE qcdoc_machine_gsum_rtt_ps summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Determinism: two scrapes of the same published snapshot are
	// byte-identical.
	_, body2 := get(t, &srv, "/metrics")
	if body != body2 {
		t.Error("two scrapes of the same snapshot differ")
	}
}

func TestTraceEndpoint(t *testing.T) {
	var srv Server
	if code, _ := get(t, &srv, "/trace"); code != 404 {
		t.Errorf("unpublished /trace status %d, want 404", code)
	}
	srv.PublishTrace([]byte(`{"traceEvents":[]}`))
	code, body := get(t, &srv, "/trace")
	if code != 200 || body != `{"traceEvents":[]}` {
		t.Errorf("/trace = %d %q", code, body)
	}
}

func TestFleetEndpoint(t *testing.T) {
	var srv Server
	if code, _ := get(t, &srv, "/fleet"); code != 404 {
		t.Errorf("unpublished /fleet status %d, want 404", code)
	}
	srv.PublishFleet(FleetStatus{
		Total: 4, Done: 2, Failed: 1,
		Runs: []FleetRun{{Name: "wilson 4x4x4x4", Done: true, Converged: true, Iterations: 12}},
	})
	code, body := get(t, &srv, "/fleet")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{`"total": 4`, `"done": 2`, `"failed": 1`, `"wilson 4x4x4x4"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/fleet missing %q in:\n%s", want, body)
		}
	}
	// Fleet progress also shows on /metrics.
	_, metrics := get(t, &srv, "/metrics")
	if !strings.Contains(metrics, "qcdoc_fleet_runs_total 4") {
		t.Errorf("/metrics missing fleet counters:\n%s", metrics)
	}
}
