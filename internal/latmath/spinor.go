package latmath

// Spinor is a Dirac 4-spinor of color vectors: 12 complex numbers, the
// per-site fermion degree of freedom for Wilson-type discretizations.
type Spinor [4]Vec3

// HalfSpinor is the two independent spin components of a spin-projected
// spinor (1 ∓ γ_mu)ψ — what actually travels between nodes during a
// Dslash halo exchange (12 complex numbers become 6).
type HalfSpinor [2]Vec3

// Add returns s + t.
func (s Spinor) Add(t Spinor) Spinor {
	return Spinor{s[0].Add(t[0]), s[1].Add(t[1]), s[2].Add(t[2]), s[3].Add(t[3])}
}

// Sub returns s - t.
func (s Spinor) Sub(t Spinor) Spinor {
	return Spinor{s[0].Sub(t[0]), s[1].Sub(t[1]), s[2].Sub(t[2]), s[3].Sub(t[3])}
}

// Scale returns a*s.
func (s Spinor) Scale(a complex128) Spinor {
	return Spinor{s[0].Scale(a), s[1].Scale(a), s[2].Scale(a), s[3].Scale(a)}
}

// AXPY returns s + a*x.
func (s Spinor) AXPY(a complex128, x Spinor) Spinor {
	return Spinor{s[0].AXPY(a, x[0]), s[1].AXPY(a, x[1]), s[2].AXPY(a, x[2]), s[3].AXPY(a, x[3])}
}

// Dot returns the full spin-color inner product s† t.
func (s Spinor) Dot(t Spinor) complex128 {
	var sum complex128
	for a := 0; a < 4; a++ {
		sum += s[a].Dot(t[a])
	}
	return sum
}

// Norm2 returns |s|^2.
func (s Spinor) Norm2() float64 {
	var sum float64
	for a := 0; a < 4; a++ {
		sum += s[a].Norm2()
	}
	return sum
}

// MulMat applies a color matrix to every spin component: (m ⊗ 1) s.
func (s Spinor) MulMat(m Mat3) Spinor {
	return Spinor{m.MulVec(s[0]), m.MulVec(s[1]), m.MulVec(s[2]), m.MulVec(s[3])}
}

// DagMulMat applies m† to every spin component.
func (s Spinor) DagMulMat(m Mat3) Spinor {
	return Spinor{m.DagMulVec(s[0]), m.DagMulVec(s[1]), m.DagMulVec(s[2]), m.DagMulVec(s[3])}
}

// Add returns h + g.
func (h HalfSpinor) Add(g HalfSpinor) HalfSpinor {
	return HalfSpinor{h[0].Add(g[0]), h[1].Add(g[1])}
}

// Scale returns a*h.
func (h HalfSpinor) Scale(a complex128) HalfSpinor {
	return HalfSpinor{h[0].Scale(a), h[1].Scale(a)}
}

// MulMat applies a color matrix to both spin components.
func (h HalfSpinor) MulMat(m Mat3) HalfSpinor {
	return HalfSpinor{m.MulVec(h[0]), m.MulVec(h[1])}
}

// DagMulMat applies m† to both spin components.
func (h HalfSpinor) DagMulMat(m Mat3) HalfSpinor {
	return HalfSpinor{m.DagMulVec(h[0]), m.DagMulVec(h[1])}
}

// SpinorWords is the number of 64-bit words in a double-precision spinor
// (24 reals), and HalfSpinorWords in a half spinor (12 reals) — the unit
// of SCU traffic in a Wilson halo exchange.
const (
	SpinorWords     = 24
	HalfSpinorWords = 12
	Vec3Words       = 6
	Mat3Words       = 18
)

// PackSpinor serializes a spinor to 64-bit words (IEEE bits, real then
// imaginary, spin-major) for transport through node memory and the SCU.
func PackSpinor(s Spinor, dst []uint64) {
	i := 0
	for a := 0; a < 4; a++ {
		for c := 0; c < 3; c++ {
			dst[i] = f64bits(real(s[a][c]))
			dst[i+1] = f64bits(imag(s[a][c]))
			i += 2
		}
	}
}

// UnpackSpinor inverts PackSpinor.
func UnpackSpinor(src []uint64) Spinor {
	var s Spinor
	i := 0
	for a := 0; a < 4; a++ {
		for c := 0; c < 3; c++ {
			s[a][c] = complex(f64frombits(src[i]), f64frombits(src[i+1]))
			i += 2
		}
	}
	return s
}

// PackHalfSpinor serializes a half spinor to 12 words.
func PackHalfSpinor(h HalfSpinor, dst []uint64) {
	i := 0
	for a := 0; a < 2; a++ {
		for c := 0; c < 3; c++ {
			dst[i] = f64bits(real(h[a][c]))
			dst[i+1] = f64bits(imag(h[a][c]))
			i += 2
		}
	}
}

// UnpackHalfSpinor inverts PackHalfSpinor.
func UnpackHalfSpinor(src []uint64) HalfSpinor {
	var h HalfSpinor
	i := 0
	for a := 0; a < 2; a++ {
		for c := 0; c < 3; c++ {
			h[a][c] = complex(f64frombits(src[i]), f64frombits(src[i+1]))
			i += 2
		}
	}
	return h
}

// PackVec3 serializes a color vector to 6 words.
func PackVec3(v Vec3, dst []uint64) {
	for c := 0; c < 3; c++ {
		dst[2*c] = f64bits(real(v[c]))
		dst[2*c+1] = f64bits(imag(v[c]))
	}
}

// UnpackVec3 inverts PackVec3.
func UnpackVec3(src []uint64) Vec3 {
	var v Vec3
	for c := 0; c < 3; c++ {
		v[c] = complex(f64frombits(src[2*c]), f64frombits(src[2*c+1]))
	}
	return v
}

// PackMat3 serializes a color matrix to 18 words, row-major.
func PackMat3(m Mat3, dst []uint64) {
	i := 0
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			dst[i] = f64bits(real(m[r][c]))
			dst[i+1] = f64bits(imag(m[r][c]))
			i += 2
		}
	}
}

// UnpackMat3 inverts PackMat3.
func UnpackMat3(src []uint64) Mat3 {
	var m Mat3
	i := 0
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			m[r][c] = complex(f64frombits(src[i]), f64frombits(src[i+1]))
			i += 2
		}
	}
	return m
}
