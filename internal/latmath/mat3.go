package latmath

import "math"

// Mat3 is a 3x3 complex color matrix, row-major: M[row][col]. Gauge
// links are SU(3) elements of this type.
type Mat3 [3][3]complex128

// Identity3 returns the identity matrix.
func Identity3() Mat3 {
	var m Mat3
	for i := 0; i < 3; i++ {
		m[i][i] = 1
	}
	return m
}

// Zero3 returns the zero matrix.
func Zero3() Mat3 { return Mat3{} }

// Add returns m + n.
func (m Mat3) Add(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][j] + n[i][j]
		}
	}
	return r
}

// Sub returns m - n.
func (m Mat3) Sub(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][j] - n[i][j]
		}
	}
	return r
}

// Scale returns a*m.
func (m Mat3) Scale(a complex128) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = a * m[i][j]
		}
	}
	return r
}

// Mul returns m n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for k := 0; k < 3; k++ {
			a := m[i][k]
			if a == 0 {
				continue
			}
			for j := 0; j < 3; j++ {
				r[i][j] += a * n[k][j]
			}
		}
	}
	return r
}

// Dagger returns the Hermitian conjugate m†.
func (m Mat3) Dagger() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = conj(m[j][i])
		}
	}
	return r
}

// MulVec returns m v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	var r Vec3
	for i := 0; i < 3; i++ {
		r[i] = m[i][0]*v[0] + m[i][1]*v[1] + m[i][2]*v[2]
	}
	return r
}

// DagMulVec returns m† v without forming the dagger.
func (m Mat3) DagMulVec(v Vec3) Vec3 {
	var r Vec3
	for i := 0; i < 3; i++ {
		r[i] = conj(m[0][i])*v[0] + conj(m[1][i])*v[1] + conj(m[2][i])*v[2]
	}
	return r
}

// Trace returns tr(m).
func (m Mat3) Trace() complex128 { return m[0][0] + m[1][1] + m[2][2] }

// ReTrace returns Re tr(m), the quantity entering the Wilson gauge
// action.
func (m Mat3) ReTrace() float64 { return real(m.Trace()) }

// Det returns the determinant.
func (m Mat3) Det() complex128 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// FrobeniusDistance returns ||m-n||_F.
func (m Mat3) FrobeniusDistance(n Mat3) float64 {
	var s float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d := m[i][j] - n[i][j]
			s += real(d)*real(d) + imag(d)*imag(d)
		}
	}
	return math.Sqrt(s)
}

// IsUnitary reports whether m† m = 1 within tol.
func (m Mat3) IsUnitary(tol float64) bool {
	return m.Dagger().Mul(m).FrobeniusDistance(Identity3()) <= tol
}

// IsSU3 reports whether m is unitary with determinant 1 within tol.
func (m Mat3) IsSU3(tol float64) bool {
	return m.IsUnitary(tol) && approxEqual(m.Det(), 1, tol)
}

// row returns row i as a Vec3.
func (m Mat3) row(i int) Vec3 { return Vec3{m[i][0], m[i][1], m[i][2]} }

func (m *Mat3) setRow(i int, v Vec3) {
	m[i][0], m[i][1], m[i][2] = v[0], v[1], v[2]
}

// Reunitarize projects m back onto SU(3) by Gram-Schmidt on the first
// two rows and completing the third row as the conjugate cross product —
// the standard cure for accumulated rounding drift in gauge evolution.
func (m Mat3) Reunitarize() Mat3 {
	r0 := m.row(0)
	n0 := math.Sqrt(r0.Norm2())
	r0 = r0.Scale(complex(1/n0, 0))
	r1 := m.row(1)
	r1 = r1.Sub(r0.Scale(r0.Dot(r1)))
	n1 := math.Sqrt(r1.Norm2())
	r1 = r1.Scale(complex(1/n1, 0))
	// r2 = conj(r0 x r1) makes det = +1.
	r2 := Vec3{
		conj(r0[1]*r1[2] - r0[2]*r1[1]),
		conj(r0[2]*r1[0] - r0[0]*r1[2]),
		conj(r0[0]*r1[1] - r0[1]*r1[0]),
	}
	var out Mat3
	out.setRow(0, r0)
	out.setRow(1, r1)
	out.setRow(2, r2)
	return out
}

// TracelessAntiHermitian projects m onto the su(3) algebra:
// (m - m†)/2 - tr(m - m†)/6, the projection used when building field
// strength and HMC forces.
func (m Mat3) TracelessAntiHermitian() Mat3 {
	a := m.Sub(m.Dagger()).Scale(0.5)
	tr := a.Trace() / 3
	for i := 0; i < 3; i++ {
		a[i][i] -= tr
	}
	return a
}

// ExpiH returns exp(i h) for Hermitian h by scaled-and-squared Taylor
// series; the result is unitary to high accuracy for moderate ||h||.
func ExpiH(h Mat3) Mat3 {
	x := h.Scale(1i)
	return expm(x)
}

// Exp returns exp(m) for a general matrix; for traceless anti-Hermitian
// m (an su(3) algebra element, e.g. an HMC momentum times a step size)
// the result is special unitary.
func Exp(m Mat3) Mat3 { return expm(m) }

// expm computes exp(x) by scaling and squaring with a 12-term Taylor
// series.
func expm(x Mat3) Mat3 {
	// Scale down by 2^k so the series converges fast.
	norm := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			norm += real(x[i][j])*real(x[i][j]) + imag(x[i][j])*imag(x[i][j])
		}
	}
	norm = math.Sqrt(norm)
	k := 0
	for norm > 0.5 {
		norm /= 2
		k++
	}
	scale := complex(math.Ldexp(1, -k), 0)
	xs := x.Scale(scale)
	sum := Identity3()
	term := Identity3()
	for n := 1; n <= 12; n++ {
		term = term.Mul(xs).Scale(complex(1/float64(n), 0))
		sum = sum.Add(term)
	}
	for ; k > 0; k-- {
		sum = sum.Mul(sum)
	}
	return sum
}
