package latmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func randVec(rng *rand.Rand) Vec3 {
	var v Vec3
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func randMat(rng *rand.Rand) Mat3 {
	var m Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return m
}

func randSpinor(rng *rand.Rand) Spinor {
	var s Spinor
	for a := range s {
		s[a] = randVec(rng)
	}
	return s
}

func TestVec3Algebra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v, w := randVec(rng), randVec(rng)
	if got := v.Add(w).Sub(w); got.Sub(v).Norm2() > tol {
		t.Fatal("add/sub not inverse")
	}
	// Inner product conjugate symmetry: <v,w> = conj(<w,v>).
	if !approxEqual(v.Dot(w), conj(w.Dot(v)), tol) {
		t.Fatal("dot not conjugate symmetric")
	}
	// Norm2 agrees with Dot.
	if math.Abs(v.Norm2()-real(v.Dot(v))) > tol {
		t.Fatal("norm2 != <v,v>")
	}
	// AXPY.
	a := complex(2.5, -1.25)
	if got := v.AXPY(a, w); got.Sub(v.Add(w.Scale(a))).Norm2() > tol {
		t.Fatal("axpy mismatch")
	}
}

func TestMat3MulAssociativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randMat(rng), randMat(rng), randMat(rng)
		return a.Mul(b).Mul(c).FrobeniusDistance(a.Mul(b.Mul(c))) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMat3DaggerQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randMat(rng), randMat(rng)
		// (ab)† = b† a†
		if a.Mul(b).Dagger().FrobeniusDistance(b.Dagger().Mul(a.Dagger())) > 1e-8 {
			return false
		}
		// m† v computed directly matches forming the dagger.
		v := randVec(rng)
		return a.DagMulVec(v).Sub(a.Dagger().MulVec(v)).Norm2() < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMat3MulVecLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMat(rng)
		v, w := randVec(rng), randVec(rng)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		lhs := m.MulVec(v.Scale(a).Add(w))
		rhs := m.MulVec(v).Scale(a).Add(m.MulVec(w))
		return lhs.Sub(rhs).Norm2() < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReunitarize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		m := randMat(rng)
		u := m.Reunitarize()
		if !u.IsSU3(1e-10) {
			t.Fatalf("reunitarized matrix not SU(3): det %v", u.Det())
		}
	}
	// Reunitarizing an SU(3) matrix is (nearly) the identity operation.
	u := RandomSU3(rand.New(rand.NewSource(3)))
	if u.Reunitarize().FrobeniusDistance(u) > 1e-9 {
		t.Fatal("reunitarize moved an SU(3) matrix")
	}
}

func TestRandomSU3Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := RandomSU3(rng)
		v := RandomSU3(rng)
		// Group closure and unitarity.
		return u.IsSU3(1e-9) && v.IsSU3(1e-9) && u.Mul(v).IsSU3(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallSU3NearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := SmallSU3(rng, 0.01)
	if !u.IsSU3(1e-9) {
		t.Fatal("not SU(3)")
	}
	if d := u.FrobeniusDistance(Identity3()); d > 0.2 {
		t.Fatalf("eps=0.01 element too far from identity: %v", d)
	}
}

func TestExpiHUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		// Hermitian h.
		m := randMat(rng)
		h := m.Add(m.Dagger()).Scale(0.5)
		u := ExpiH(h)
		if !u.IsUnitary(1e-8) {
			t.Fatalf("exp(iH) not unitary at trial %d", i)
		}
	}
	// exp(0) = 1.
	if ExpiH(Zero3()).FrobeniusDistance(Identity3()) > tol {
		t.Fatal("exp(0) != 1")
	}
}

func TestTracelessAntiHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randMat(rng)
	a := m.TracelessAntiHermitian()
	if !approxEqual(a.Trace(), 0, tol) {
		t.Fatalf("trace = %v", a.Trace())
	}
	if a.Add(a.Dagger()).FrobeniusDistance(Zero3()) > tol {
		t.Fatal("not anti-Hermitian")
	}
}

func TestGammaAnticommutators(t *testing.T) {
	// {γ_μ, γ_ν} = 2 δ_{μν}.
	for mu := 0; mu < 4; mu++ {
		for nu := 0; nu < 4; nu++ {
			anti := Gamma[mu].Mul(Gamma[nu]).Add(Gamma[nu].Mul(Gamma[mu]))
			want := Mat4{}
			if mu == nu {
				want = Identity4.Scale(2)
			}
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if !approxEqual(anti[i][j], want[i][j], tol) {
						t.Fatalf("anticommutator {%d,%d} wrong at (%d,%d): %v", mu, nu, i, j, anti[i][j])
					}
				}
			}
		}
	}
}

func TestGammaHermitian(t *testing.T) {
	for mu := 0; mu < 4; mu++ {
		d := Gamma[mu].Dagger()
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if !approxEqual(d[i][j], Gamma[mu][i][j], tol) {
					t.Fatalf("γ_%d not Hermitian", mu)
				}
			}
		}
	}
}

func TestGamma5(t *testing.T) {
	// γ5 anticommutes with every γ_μ and squares to one; in the chiral
	// basis it is diag(±1).
	for mu := 0; mu < 4; mu++ {
		anti := Gamma5.Mul(Gamma[mu]).Add(Gamma[mu].Mul(Gamma5))
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if !approxEqual(anti[i][j], 0, tol) {
					t.Fatalf("γ5 does not anticommute with γ_%d", mu)
				}
			}
		}
	}
	sq := Gamma5.Mul(Gamma5)
	for i := 0; i < 4; i++ {
		if !approxEqual(sq[i][i], 1, tol) {
			t.Fatal("γ5² != 1")
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && !approxEqual(Gamma5[i][j], 0, tol) {
				t.Fatal("γ5 not diagonal in chiral basis")
			}
		}
	}
}

func TestSigmaHermitianAntisymmetric(t *testing.T) {
	for mu := 0; mu < 4; mu++ {
		for nu := 0; nu < 4; nu++ {
			s := Sigma(mu, nu)
			// σ_{μν} = -σ_{νμ}.
			sT := Sigma(nu, mu)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if !approxEqual(s[i][j], -sT[i][j], tol) {
						t.Fatalf("σ not antisymmetric in (%d,%d)", mu, nu)
					}
				}
			}
			if mu == nu {
				continue
			}
			// Hermitian.
			d := s.Dagger()
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if !approxEqual(d[i][j], s[i][j], tol) {
						t.Fatalf("σ_{%d%d} not Hermitian", mu, nu)
					}
				}
			}
		}
	}
}

// TestProjectReconstruct is the key Dslash identity: reconstructing a
// projected half spinor reproduces (1 - s γ_μ)ψ exactly, for every
// direction and sign. This is what licenses sending 12 instead of 24
// complex numbers per face site.
func TestProjectReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for mu := 0; mu < 4; mu++ {
		for _, s := range []int{+1, -1} {
			for trial := 0; trial < 10; trial++ {
				psi := randSpinor(rng)
				P := Identity4.Sub(Gamma[mu].Scale(complex(float64(s), 0)))
				want := P.ApplySpin(psi)
				got := Reconstruct(mu, s, Project(mu, s, psi))
				if got.Sub(want).Norm2() > tol {
					t.Fatalf("project/reconstruct mismatch mu=%d s=%d", mu, s)
				}
			}
		}
	}
}

func TestProjectLinearQuick(t *testing.T) {
	f := func(seed int64, muSel, sSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := int(muSel) % 4
		s := 1 - 2*int(sSel%2)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		x, y := randSpinor(rng), randSpinor(rng)
		lhs := Project(mu, s, x.Scale(a).Add(y))
		rhs := Project(mu, s, x).Scale(a).Add(Project(mu, s, y))
		return lhs.Add(rhs.Scale(-1))[0].Norm2()+lhs.Add(rhs.Scale(-1))[1].Norm2() < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpinorAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, u := randSpinor(rng), randSpinor(rng)
	m := RandomSU3(rng)
	// Color rotation preserves the norm.
	if math.Abs(s.MulMat(m).Norm2()-s.Norm2()) > 1e-8 {
		t.Fatal("SU(3) rotation changed spinor norm")
	}
	// DagMulMat undoes MulMat.
	if s.MulMat(m).DagMulMat(m).Sub(s).Norm2() > 1e-8 {
		t.Fatal("m† m != 1 on spinor")
	}
	// Dot/Norm consistency.
	if math.Abs(real(s.Dot(s))-s.Norm2()) > tol {
		t.Fatal("spinor dot/norm mismatch")
	}
	_ = u
}

func TestPackUnpackRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randSpinor(rng)
		buf := make([]uint64, SpinorWords)
		PackSpinor(s, buf)
		if UnpackSpinor(buf) != s {
			return false
		}
		h := Project(0, 1, s)
		hb := make([]uint64, HalfSpinorWords)
		PackHalfSpinor(h, hb)
		if UnpackHalfSpinor(hb) != h {
			return false
		}
		m := randMat(rng)
		mb := make([]uint64, Mat3Words)
		PackMat3(m, mb)
		if UnpackMat3(mb) != m {
			return false
		}
		v := randVec(rng)
		vb := make([]uint64, Vec3Words)
		PackVec3(v, vb)
		return UnpackVec3(vb) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSU2EmbeddingQuick(t *testing.T) {
	f := func(seed int64, sgSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sg := int(sgSel) % NumSU2Subgroups
		u := RandomSU2(rng)
		m := EmbedSU2(u, sg)
		if !m.IsSU3(1e-9) {
			return false
		}
		// Extraction recovers the embedded element exactly (k=1).
		got, k := ExtractSU2(m, sg)
		return math.Abs(k-1) < 1e-9 &&
			math.Abs(got.A0-u.A0) < 1e-9 && math.Abs(got.A1-u.A1) < 1e-9 &&
			math.Abs(got.A2-u.A2) < 1e-9 && math.Abs(got.A3-u.A3) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtractSU2Zero(t *testing.T) {
	u, k := ExtractSU2(Zero3(), 0)
	if k != 0 || u.A0 != 1 {
		t.Fatalf("zero extract = %+v k=%v", u, k)
	}
}

func TestGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var sum, sum2 float64
	n := 20000
	for i := 0; i < n; i++ {
		v := GaussianVec3(rng)
		for c := 0; c < 3; c++ {
			sum += real(v[c]) + imag(v[c])
			sum2 += real(v[c])*real(v[c]) + imag(v[c])*imag(v[c])
		}
	}
	mean := sum / float64(6*n)
	varr := sum2 / float64(6*n)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if math.Abs(varr-1) > 0.03 {
		t.Fatalf("gaussian variance = %v", varr)
	}
}
