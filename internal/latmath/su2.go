package latmath

import "math"

// Source is the minimal random stream the algebra needs: uniform values
// in [0,1). The deterministic per-site generators in internal/rng satisfy
// it.
type Source interface {
	Float64() float64
}

// gauss draws a standard normal via Box-Muller (two uniforms per pair;
// deterministic for a deterministic Source).
func gauss(src Source) (float64, float64) {
	var u float64
	for {
		u = src.Float64()
		if u > 0 {
			break
		}
	}
	v := src.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	return r * math.Cos(2*math.Pi*v), r * math.Sin(2*math.Pi*v)
}

// GaussianVec3 draws a color vector with independent unit-normal real and
// imaginary parts — the source vectors for pseudofermions and random
// solver right-hand sides.
func GaussianVec3(src Source) Vec3 {
	var v Vec3
	for c := 0; c < 3; c++ {
		re, im := gauss(src)
		v[c] = complex(re, im)
	}
	return v
}

// GaussianSpinor draws a spinor with unit-normal components.
func GaussianSpinor(src Source) Spinor {
	var s Spinor
	for a := 0; a < 4; a++ {
		s[a] = GaussianVec3(src)
	}
	return s
}

// SU2 is an SU(2) element in quaternion form: a0 + i(a1 σ1 + a2 σ2 + a3 σ3)
// with a0²+a1²+a2²+a3² = 1.
type SU2 struct{ A0, A1, A2, A3 float64 }

// Mat returns the 2x2 complex matrix.
func (u SU2) Mat() [2][2]complex128 {
	return [2][2]complex128{
		{complex(u.A0, u.A3), complex(u.A2, u.A1)},
		{complex(-u.A2, u.A1), complex(u.A0, -u.A3)},
	}
}

// Mul returns the quaternion product u v.
func (u SU2) Mul(v SU2) SU2 {
	return SU2{
		A0: u.A0*v.A0 - u.A1*v.A1 - u.A2*v.A2 - u.A3*v.A3,
		A1: u.A0*v.A1 + u.A1*v.A0 + u.A2*v.A3 - u.A3*v.A2,
		A2: u.A0*v.A2 - u.A1*v.A3 + u.A2*v.A0 + u.A3*v.A1,
		A3: u.A0*v.A3 + u.A1*v.A2 - u.A2*v.A1 + u.A3*v.A0,
	}
}

// Conj returns the quaternion conjugate — the inverse for unit
// quaternions.
func (u SU2) Conj() SU2 { return SU2{u.A0, -u.A1, -u.A2, -u.A3} }

// su2Subgroups lists the (p,q) index pairs of the three SU(2) subgroups
// of SU(3) used by Cabibbo-Marinari pseudo-heatbath sweeps.
var su2Subgroups = [3][2]int{{0, 1}, {0, 2}, {1, 2}}

// NumSU2Subgroups is the number of embedded SU(2) subgroups swept.
const NumSU2Subgroups = len(su2Subgroups)

// EmbedSU2 places an SU(2) element into the (p,q) subgroup of SU(3)
// (subgroup index 0..2), identity elsewhere.
func EmbedSU2(u SU2, subgroup int) Mat3 {
	p, q := su2Subgroups[subgroup][0], su2Subgroups[subgroup][1]
	m := Identity3()
	w := u.Mat()
	m[p][p] = w[0][0]
	m[p][q] = w[0][1]
	m[q][p] = w[1][0]
	m[q][q] = w[1][1]
	return m
}

// ExtractSU2 pulls the best SU(2) approximation of the (p,q) submatrix
// of m: the quaternion components of (m_pp+m_qq*, m_pq+m_qp*, ...)
// before normalization, plus its norm k. This is the Cabibbo-Marinari
// staple projection; if k is ~0 the submatrix carries no SU(2) part.
func ExtractSU2(m Mat3, subgroup int) (SU2, float64) {
	p, q := su2Subgroups[subgroup][0], su2Subgroups[subgroup][1]
	a0 := (real(m[p][p]) + real(m[q][q])) / 2
	a3 := (imag(m[p][p]) - imag(m[q][q])) / 2
	a2 := (real(m[p][q]) - real(m[q][p])) / 2
	a1 := (imag(m[p][q]) + imag(m[q][p])) / 2
	k := math.Sqrt(a0*a0 + a1*a1 + a2*a2 + a3*a3)
	if k == 0 {
		return SU2{A0: 1}, 0
	}
	return SU2{a0 / k, a1 / k, a2 / k, a3 / k}, k
}

// RandomSU2 draws a uniformly distributed SU(2) element.
func RandomSU2(src Source) SU2 {
	g0, g1 := gauss(src)
	g2, g3 := gauss(src)
	n := math.Sqrt(g0*g0 + g1*g1 + g2*g2 + g3*g3)
	if n == 0 {
		return SU2{A0: 1}
	}
	return SU2{g0 / n, g1 / n, g2 / n, g3 / n}
}

// RandomSU3 draws an approximately Haar-distributed SU(3) element by
// multiplying random SU(2) elements in each subgroup and reunitarizing.
func RandomSU3(src Source) Mat3 {
	m := Identity3()
	for rep := 0; rep < 2; rep++ {
		for sg := 0; sg < NumSU2Subgroups; sg++ {
			m = EmbedSU2(RandomSU2(src), sg).Mul(m)
		}
	}
	return m.Reunitarize()
}

// SmallSU3 draws an SU(3) element near the identity: exp(i eps H) for a
// random Hermitian traceless H with O(1) entries. Used for Metropolis
// updates and for perturbing configurations in tests.
func SmallSU3(src Source, eps float64) Mat3 {
	var h Mat3
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			re, im := gauss(src)
			if i == j {
				h[i][j] = complex(re, 0)
			} else {
				h[i][j] = complex(re, im)
				h[j][i] = complex(re, -im)
			}
		}
	}
	tr := h.Trace() / 3
	for i := 0; i < 3; i++ {
		h[i][i] -= tr
	}
	return ExpiH(h.Scale(complex(eps, 0))).Reunitarize()
}
