// Package latmath provides the dense linear algebra of lattice QCD: SU(3)
// color matrices, color 3-vectors, 4-component Dirac spinors, the gamma
// matrices with spin projection/reconstruction used by Wilson-type
// operators, and small utilities (SU(2) subgroup embedding, Hermitian
// exponentials) used by the gauge evolution code.
//
// Everything is complex128; all operations are deterministic, which the
// bit-identical reproducibility experiment (E10) relies on.
package latmath

import "math"

// Vec3 is a color vector: the fundamental representation of SU(3).
type Vec3 [3]complex128

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 {
	return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]}
}

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 {
	return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]}
}

// Scale returns a*v.
func (v Vec3) Scale(a complex128) Vec3 {
	return Vec3{a * v[0], a * v[1], a * v[2]}
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v[0], -v[1], -v[2]} }

// Dot returns the Hermitian inner product v† w.
func (v Vec3) Dot(w Vec3) complex128 {
	var s complex128
	for i := range v {
		s += conj(v[i]) * w[i]
	}
	return s
}

// Norm2 returns |v|^2 = v† v (real, returned as float64).
func (v Vec3) Norm2() float64 {
	var s float64
	for i := range v {
		s += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
	}
	return s
}

// AXPY returns a*x + v.
func (v Vec3) AXPY(a complex128, x Vec3) Vec3 {
	return Vec3{v[0] + a*x[0], v[1] + a*x[1], v[2] + a*x[2]}
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// approxEqual compares with absolute tolerance.
func approxEqual(a, b complex128, tol float64) bool {
	return math.Abs(real(a)-real(b)) <= tol && math.Abs(imag(a)-imag(b)) <= tol
}
