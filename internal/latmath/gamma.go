package latmath

import (
	"fmt"
	"math"
)

// f64bits/f64frombits are tiny wrappers so spinor.go stays import-light.
func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Mat4 is a 4x4 complex spin matrix.
type Mat4 [4][4]complex128

// The Dirac gamma matrices in the DeGrand-Rossi (chiral) basis, indexed
// by direction 0..3 = x, y, z, t. In this basis γ5 = diag(+1,+1,-1,-1),
// which makes domain-wall chirality projectors trivial. All four tables
// here are pure-value arrays computed at declaration and never written
// afterwards (fleetsafe): every machine in a fleet reads the same
// immutable copies.
var Gamma = buildGamma()

// Gamma5 is the chirality matrix, γ5 = γ_x γ_y γ_z γ_t.
var Gamma5 = Gamma[0].Mul(Gamma[1]).Mul(Gamma[2]).Mul(Gamma[3])

// Identity4 is the 4x4 identity.
var Identity4 = buildIdentity4()

func buildGamma() [4]Mat4 {
	i := complex(0, 1)
	return [4]Mat4{
		{ // γ_x
			{0, 0, 0, i},
			{0, 0, i, 0},
			{0, -i, 0, 0},
			{-i, 0, 0, 0},
		},
		{ // γ_y
			{0, 0, 0, -1},
			{0, 0, 1, 0},
			{0, 1, 0, 0},
			{-1, 0, 0, 0},
		},
		{ // γ_z
			{0, 0, i, 0},
			{0, 0, 0, -i},
			{-i, 0, 0, 0},
			{0, i, 0, 0},
		},
		{ // γ_t
			{0, 0, 1, 0},
			{0, 0, 0, 1},
			{1, 0, 0, 0},
			{0, 1, 0, 0},
		},
	}
}

func buildIdentity4() Mat4 {
	var m Mat4
	for r := 0; r < 4; r++ {
		m[r][r] = 1
	}
	return m
}

// Mul returns m n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			a := m[i][k]
			if a == 0 {
				continue
			}
			for j := 0; j < 4; j++ {
				r[i][j] += a * n[k][j]
			}
		}
	}
	return r
}

// Add returns m + n.
func (m Mat4) Add(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[i][j] + n[i][j]
		}
	}
	return r
}

// Sub returns m - n.
func (m Mat4) Sub(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = m[i][j] - n[i][j]
		}
	}
	return r
}

// Scale returns a m.
func (m Mat4) Scale(a complex128) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = a * m[i][j]
		}
	}
	return r
}

// Dagger returns m†.
func (m Mat4) Dagger() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i][j] = conj(m[j][i])
		}
	}
	return r
}

// ApplySpin applies the spin matrix to a spinor: (m ⊗ 1_color) s.
func (m Mat4) ApplySpin(s Spinor) Spinor {
	var r Spinor
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			c := m[a][b]
			if c == 0 {
				continue
			}
			r[a] = r[a].AXPY(c, s[b])
		}
	}
	return r
}

// Sigma returns σ_{μν} = (i/2)[γ_μ, γ_ν], the spin tensor entering the
// clover term.
func Sigma(mu, nu int) Mat4 {
	comm := Gamma[mu].Mul(Gamma[nu]).Sub(Gamma[nu].Mul(Gamma[mu]))
	return comm.Scale(complex(0, 0.5))
}

// Spin projection. For hopping direction μ and sign s = ±1 the Wilson
// operator applies P = (1 - s γ_μ), a rank-2 matrix: the projected
// spinor's lower two spin components are a fixed linear combination of
// the upper two. recon[μ][sIdx] holds that 2x2 map R with
// (Pψ)_{2+j} = Σ_k R[j][k] (Pψ)_k, computed (and verified) at
// declaration for whatever basis Gamma holds.
var recon = buildProjectors()

func buildProjectors() (recon [4][2][2][2]complex128) {
	for mu := 0; mu < 4; mu++ {
		for sIdx, s := range []complex128{+1, -1} {
			P := Identity4.Sub(Gamma[mu].Scale(s))
			// Solve [P2c; P3c] = R [P0c; P1c] for all columns c. Find two
			// columns making the top 2x2 invertible.
			var R [2][2]complex128
			found := false
			for c0 := 0; c0 < 4 && !found; c0++ {
				for c1 := c0 + 1; c1 < 4 && !found; c1++ {
					det := P[0][c0]*P[1][c1] - P[0][c1]*P[1][c0]
					if abs2(det) < 1e-12 {
						continue
					}
					inv := [2][2]complex128{
						{P[1][c1] / det, -P[0][c1] / det},
						{-P[1][c0] / det, P[0][c0] / det},
					}
					for j := 0; j < 2; j++ {
						R[j][0] = P[2+j][c0]*inv[0][0] + P[2+j][c1]*inv[1][0]
						R[j][1] = P[2+j][c0]*inv[0][1] + P[2+j][c1]*inv[1][1]
					}
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("latmath: projector (mu=%d s=%v) not rank deficient as expected", mu, s))
			}
			// Verify the relation on every column.
			for c := 0; c < 4; c++ {
				for j := 0; j < 2; j++ {
					got := R[j][0]*P[0][c] + R[j][1]*P[1][c]
					if !approxEqual(got, P[2+j][c], 1e-12) {
						panic(fmt.Sprintf("latmath: spin reconstruction failed for mu=%d s=%v", mu, s))
					}
				}
			}
			recon[mu][sIdx] = R
		}
	}
	return recon
}

func abs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

func signIndex(s int) int {
	if s > 0 {
		return 0
	}
	return 1
}

// Project computes the two independent components of (1 - s γ_μ) ψ.
// This is what is sent to a neighbour: 12 complex numbers instead of 24.
func Project(mu, s int, psi Spinor) HalfSpinor {
	P := Identity4.Sub(Gamma[mu].Scale(complex(float64(s), 0)))
	var h HalfSpinor
	for a := 0; a < 2; a++ {
		for b := 0; b < 4; b++ {
			c := P[a][b]
			if c == 0 {
				continue
			}
			h[a] = h[a].AXPY(c, psi[b])
		}
	}
	return h
}

// Reconstruct expands a projected half spinor back to the full four
// components of (1 - s γ_μ) ψ using the precomputed 2x2 map.
func Reconstruct(mu, s int, h HalfSpinor) Spinor {
	R := recon[mu][signIndex(s)]
	var out Spinor
	out[0] = h[0]
	out[1] = h[1]
	out[2] = h[0].Scale(R[0][0]).Add(h[1].Scale(R[0][1]))
	out[3] = h[0].Scale(R[1][0]).Add(h[1].Scale(R[1][1]))
	return out
}
