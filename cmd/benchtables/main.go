// Command benchtables regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
// the paper-vs-measured record).
//
// Usage:
//
//	benchtables             # model-level experiments (fast)
//	benchtables -functional # also run the packet-level machine simulations
//	benchtables -e E1,E4    # only the named experiments
//	benchtables -bench BENCH_obs.json  # render pinned benchjson records
//
// With -bench, each benchjson file renders as a table: ns/op and the
// allocation columns first, then any percentile metrics (p50/p95/p99,
// as reported by the observability benchmarks) in rank order, then the
// remaining custom metrics sorted by name.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"qcdoc/internal/experiments"
)

func main() {
	functional := flag.Bool("functional", false, "run the packet-level machine simulations too (slower)")
	only := flag.String("e", "", "comma-separated experiment ids (e.g. E1,E4f); default all")
	benchFiles := flag.String("bench", "", "comma-separated benchjson files (BENCH_*.json) to render as tables")
	flag.Parse()

	if *benchFiles != "" {
		for _, path := range strings.Split(*benchFiles, ",") {
			if err := renderBenchFile(strings.TrimSpace(path)); err != nil {
				fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	selected := func(id string) bool {
		return len(want) == 0 || want[strings.ToUpper(id)]
	}

	var tables []experiments.Table
	for _, t := range experiments.Static() {
		if selected(t.ID) {
			tables = append(tables, t)
		}
	}
	if *functional || anyFunctionalSelected(want) {
		type fn struct {
			id  string
			run func() (experiments.Table, error)
		}
		for _, f := range []fn{
			{"E4F", experiments.E4Functional},
			{"E5F", experiments.E5Functional},
			{"E10", experiments.E10},
			{"E12", experiments.E12},
			{"E13", experiments.E13},
			{"E14", experiments.E14},
			{"E16", experiments.E16},
			{"E1F", experiments.E1Functional},
		} {
			if !selected(f.id) {
				continue
			}
			t, err := f.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", f.id, err)
				os.Exit(1)
			}
			tables = append(tables, t)
		}
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
}

// benchRecord mirrors cmd/benchjson's output shape (the two commands
// stay decoupled — this is the read side of that file format).
type benchRecord struct {
	Meta struct {
		GOMAXPROCS int               `json:"gomaxprocs"`
		NumCPU     int               `json:"numcpu"`
		Extra      map[string]string `json:"extra,omitempty"`
	} `json:"meta"`
	Results []struct {
		Name    string             `json:"name"`
		Runs    int64              `json:"runs"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

// leadCols are the metric columns every benchmark table leads with,
// in order; percentileCols follow, then everything else sorted.
var leadCols = []string{"ns/op", "B/op", "allocs/op"}
var percentileCols = []string{"p50", "p95", "p99"}

// renderBenchFile prints one benchjson record as an aligned table.
func renderBenchFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec benchRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}

	// Column set: lead columns and percentiles in fixed rank order when
	// any result reports them, then the leftover metrics sorted by name.
	present := map[string]bool{}
	for _, r := range rec.Results {
		for m := range r.Metrics {
			present[m] = true
		}
	}
	fixed := map[string]bool{}
	var cols []string
	for _, c := range append(append([]string{}, leadCols...), percentileCols...) {
		if present[c] {
			cols = append(cols, c)
			fixed[c] = true
		}
	}
	var rest []string
	for m := range present {
		if !fixed[m] {
			rest = append(rest, m)
		}
	}
	sort.Strings(rest)
	cols = append(cols, rest...)

	fmt.Printf("%s (gomaxprocs %d, numcpu %d", path, rec.Meta.GOMAXPROCS, rec.Meta.NumCPU)
	if suite := rec.Meta.Extra["suite"]; suite != "" {
		fmt.Printf(", suite %s", suite)
	}
	fmt.Println(")")
	fmt.Printf("  %-44s %10s", "benchmark", "runs")
	for _, c := range cols {
		fmt.Printf(" %14s", c)
	}
	fmt.Println()
	for _, r := range rec.Results {
		fmt.Printf("  %-44s %10d", r.Name, r.Runs)
		for _, c := range cols {
			if v, ok := r.Metrics[c]; ok {
				fmt.Printf(" %14.6g", v)
			} else {
				fmt.Printf(" %14s", "-")
			}
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// anyFunctionalSelected reports whether -e names a functional experiment.
func anyFunctionalSelected(want map[string]bool) bool {
	for _, id := range []string{"E1F", "E4F", "E5F", "E10", "E12", "E13", "E14", "E16"} {
		if want[id] {
			return true
		}
	}
	return false
}
