// Command benchtables regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for
// the paper-vs-measured record).
//
// Usage:
//
//	benchtables             # model-level experiments (fast)
//	benchtables -functional # also run the packet-level machine simulations
//	benchtables -e E1,E4    # only the named experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qcdoc/internal/experiments"
)

func main() {
	functional := flag.Bool("functional", false, "run the packet-level machine simulations too (slower)")
	only := flag.String("e", "", "comma-separated experiment ids (e.g. E1,E4f); default all")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	selected := func(id string) bool {
		return len(want) == 0 || want[strings.ToUpper(id)]
	}

	var tables []experiments.Table
	for _, t := range experiments.Static() {
		if selected(t.ID) {
			tables = append(tables, t)
		}
	}
	if *functional || anyFunctionalSelected(want) {
		type fn struct {
			id  string
			run func() (experiments.Table, error)
		}
		for _, f := range []fn{
			{"E4F", experiments.E4Functional},
			{"E5F", experiments.E5Functional},
			{"E10", experiments.E10},
			{"E12", experiments.E12},
			{"E13", experiments.E13},
			{"E14", experiments.E14},
			{"E16", experiments.E16},
			{"E1F", experiments.E1Functional},
		} {
			if !selected(f.id) {
				continue
			}
			t, err := f.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", f.id, err)
				os.Exit(1)
			}
			tables = append(tables, t)
		}
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
}

// anyFunctionalSelected reports whether -e names a functional experiment.
func anyFunctionalSelected(want map[string]bool) bool {
	for _, id := range []string{"E1F", "E4F", "E5F", "E10", "E12", "E13", "E14", "E16"} {
		if want[id] {
			return true
		}
	}
	return false
}
