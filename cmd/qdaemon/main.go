// Command qdaemon runs the host daemon with a qcsh command shell (§3.1)
// against a simulated machine.
//
//	qdaemon -machine 2,2,2           # interactive qcsh REPL
//	qdaemon -machine 2,2 -c "boot; run j1 demo; output j1"
//	qdaemon -metrics 127.0.0.1:9100  # also export /metrics (Prometheus text)
//
// A demo program ("demo": every node prints its rank and performs a
// machine-wide global sum) is preloaded.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/obs"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/qmp"
	"qcdoc/internal/qos"
)

func main() {
	mshape := flag.String("machine", "2,2,2", "six-dimensional machine shape")
	script := flag.String("c", "", "semicolon-separated commands (default: interactive)")
	metrics := flag.String("metrics", "", "serve Prometheus-text /metrics on this address (e.g. 127.0.0.1:9100)")
	flag.Parse()

	var dims []int
	for _, f := range strings.Split(*mshape, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad machine shape %q\n", *mshape)
			os.Exit(2)
		}
		dims = append(dims, v)
	}
	shape := geom.MakeShape(dims...)

	eng := event.New()
	m := machine.Build(eng, machine.DefaultConfig(shape))
	if err := m.TrainLinks(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d := qdaemon.New(eng, m)
	fold := geom.IdentityFold(shape)
	d.LoadProgram("demo", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			k := qos.FromCtx(ctx)
			c := qmp.New(ctx, fold)
			total := c.GlobalSumFloat64(ctx.P, float64(rank))
			k.Printf("rank %d sees machine sum %v", rank, total)
		}
	})
	sh := &qdaemon.Qcsh{D: d}

	// With -metrics, the daemon doubles as an exporter: telemetry is
	// enabled, and after every command batch the machine snapshot is
	// published to an obs.Server. The HTTP side only ever sees published
	// copies — snapshots are taken here, between engine runs, never
	// concurrently with the simulation.
	var srv *obs.Server
	if *metrics != "" {
		srv = &obs.Server{}
		m.EnableTelemetry()
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		go http.Serve(ln, srv.Handler())
		fmt.Printf("qdaemon: serving /metrics on http://%s\n", ln.Addr())
	}

	exec := func(line string) {
		line = strings.TrimSpace(line)
		if line == "" {
			return
		}
		var out string
		var err error
		eng.Spawn("qcsh", func(p *event.Proc) { out, err = sh.Exec(p, line) })
		if rerr := eng.RunAll(); rerr != nil {
			fmt.Fprintln(os.Stderr, "engine:", rerr)
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		if out != "" {
			fmt.Println(out)
		}
		if srv != nil {
			srv.PublishMetrics(eng.Now(), m.Reg.Snapshot())
		}
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			exec(line)
		}
		return
	}
	fmt.Printf("qcsh connected to %d-node QCDOC (%v); type help\n", m.NumNodes(), shape)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("qcsh> ")
	for scanner.Scan() {
		exec(scanner.Text())
		fmt.Print("qcsh> ")
	}
}
