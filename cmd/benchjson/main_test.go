package main

import (
	"io"
	"strings"
	"testing"
)

func TestScanParsesAndSkipsChatter(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"warning: GOPATH not set", // stray stderr-style chatter
		"BenchmarkE4Latency-8   \t  1000\t  599 lat-ns/op\t  0 B/op\t 0 allocs/op",
		"PASS",
		"ok  \tqcdoc\t1.234s",
	}, "\n")
	var echo strings.Builder
	results, err := scan(strings.NewReader(in), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v, want 1", results)
	}
	r := results[0]
	if r.Name != "BenchmarkE4Latency-8" || r.Runs != 1000 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["lat-ns/op"] != 599 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	// Every input line is echoed, benchmark or not.
	if got := strings.Count(echo.String(), "\n"); got != 5 {
		t.Fatalf("echoed %d lines, want 5", got)
	}
}

func TestScanEmptyInputFails(t *testing.T) {
	for _, in := range []string{"", "PASS\nok \tqcdoc\t0.1s\n"} {
		if _, err := scan(strings.NewReader(in), io.Discard); err == nil {
			t.Fatalf("scan(%q) succeeded, want error on input with no benchmarks", in)
		}
	}
}
