package main

import (
	"io"
	"strings"
	"testing"
)

func TestScanParsesAndSkipsChatter(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"warning: GOPATH not set", // stray stderr-style chatter
		"BenchmarkE4Latency-8   \t  1000\t  599 lat-ns/op\t  0 B/op\t 0 allocs/op",
		"PASS",
		"ok  \tqcdoc\t1.234s",
	}, "\n")
	var echo strings.Builder
	results, err := scan(strings.NewReader(in), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v, want 1", results)
	}
	r := results[0]
	if r.Name != "BenchmarkE4Latency-8" || r.Runs != 1000 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["lat-ns/op"] != 599 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	// Every input line is echoed, benchmark or not.
	if got := strings.Count(echo.String(), "\n"); got != 5 {
		t.Fatalf("echoed %d lines, want 5", got)
	}
}

func TestScanEmptyInputFails(t *testing.T) {
	for _, in := range []string{"", "PASS\nok \tqcdoc\t0.1s\n"} {
		if _, err := scan(strings.NewReader(in), io.Discard); err == nil {
			t.Fatalf("scan(%q) succeeded, want error on input with no benchmarks", in)
		}
	}
}

// TestMetaRecordsProvenance pins the PR 6 gap fix: a record must say
// what host it was measured on, so a single-core "workers=8" row can
// never masquerade as a real multi-core speedup.
func TestMetaRecordsProvenance(t *testing.T) {
	results := []Result{
		{Name: "BenchmarkE11RackScale/workers=8-4", Runs: 3},
		{Name: "BenchmarkE11RackScale/workers=1-4", Runs: 3},
		{Name: "BenchmarkE11RackScale/workers=4-4", Runs: 3},
		{Name: "BenchmarkEngineDispatch-4", Runs: 100},
		{Name: "BenchmarkE11RackScale/workers=8-4", Runs: 3}, // -count repeat: no dup
	}
	m := metaFor(results, map[string]string{"suite": "parallel"})
	if m.GOMAXPROCS == 0 || m.NumCPU == 0 || m.GOOS == "" || m.GOARCH == "" {
		t.Fatalf("host provenance missing: %+v", m)
	}
	if want := []int{1, 4, 8}; len(m.WorkerCounts) != 3 ||
		m.WorkerCounts[0] != want[0] || m.WorkerCounts[1] != want[1] || m.WorkerCounts[2] != want[2] {
		t.Fatalf("WorkerCounts = %v, want %v", m.WorkerCounts, want)
	}
	if m.Extra["suite"] != "parallel" {
		t.Fatalf("Extra = %v", m.Extra)
	}
}

func TestMetaFlagParsesKeyValue(t *testing.T) {
	m := metaFlag{}
	if err := m.Set("suite=fleet"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("nonsense"); err == nil {
		t.Fatal("Set(\"nonsense\") succeeded, want error")
	}
	if m["suite"] != "fleet" {
		t.Fatalf("m = %v", m)
	}
}
