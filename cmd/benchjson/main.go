// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record. Every input line is echoed to stdout unchanged
// (so it can sit at the end of a pipe without hiding the run), and each
// benchmark result line becomes one JSON entry with its iteration count
// and every reported metric, including -benchmem columns and custom
// b.ReportMetric values. Repeated entries from -count=N stay separate so
// downstream tooling can judge variance.
//
// The record carries a meta block with the host provenance the numbers
// are meaningless without: GOMAXPROCS and runtime.NumCPU (so a
// "workers=8" row measured on one core is distinguishable from a real
// 8-core measurement), the goos/goarch pair, the worker counts named by
// the benchmarks themselves (".../workers=N" sub-benchmarks), and any
// -meta key=value pairs the caller adds.
//
// Usage: go test -bench ... -benchmem | benchjson -meta suite=frames -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, b.N, and metric name -> value.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Meta is the provenance block: where and how the numbers were taken.
type Meta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// WorkerCounts lists the distinct worker-pool sizes named by
	// ".../workers=N" sub-benchmarks in this record, ascending. A count
	// above NumCPU means those rows measure scheduling overhead, not
	// parallel speedup.
	WorkerCounts []int `json:"worker_counts,omitempty"`
	// Extra holds caller-supplied -meta key=value pairs.
	Extra map[string]string `json:"extra,omitempty"`
}

// Record is the file format: provenance plus results.
type Record struct {
	Meta    Meta     `json:"meta"`
	Results []Result `json:"results"`
}

var workersRe = regexp.MustCompile(`workers=(\d+)`)

// metaFor builds the provenance block for a result set.
func metaFor(results []Result, extra map[string]string) Meta {
	m := Meta{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Extra:      extra,
	}
	seen := map[int]bool{}
	for _, r := range results {
		if w := workersRe.FindStringSubmatch(r.Name); w != nil {
			if n, err := strconv.Atoi(w[1]); err == nil && !seen[n] {
				seen[n] = true
				m.WorkerCounts = append(m.WorkerCounts, n)
			}
		}
	}
	sort.Ints(m.WorkerCounts)
	return m
}

// metaFlag collects repeated -meta key=value arguments.
type metaFlag map[string]string

func (m metaFlag) String() string { return "" }

func (m metaFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	m[k] = v
	return nil
}

func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// scan reads benchmark output from r, echoing every line to echo, and
// returns the parsed results. Non-benchmark lines (test chatter, PASS,
// stray stderr) are skipped; input with no benchmark line at all is an
// error, so a broken pipeline fails loudly instead of producing an
// empty JSON file that silently passes downstream checks.
func scan(r io.Reader, echo io.Writer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if res, ok := parseLine(line); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	if len(results) == 0 {
		return nil, errors.New("no benchmark result lines in input (did the benchmark run fail?)")
	}
	return results, nil
}

func main() {
	out := flag.String("o", "", "write JSON results to this file (default stdout only)")
	extra := metaFlag{}
	flag.Var(extra, "meta", "extra provenance as key=value (repeatable)")
	flag.Parse()

	results, err := scan(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(extra) == 0 {
		extra = nil
	}
	rec := Record{Meta: metaFor(results, extra), Results: results}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
