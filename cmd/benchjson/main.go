// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record. Every input line is echoed to stdout unchanged
// (so it can sit at the end of a pipe without hiding the run), and each
// benchmark result line becomes one JSON entry with its iteration count
// and every reported metric, including -benchmem columns and custom
// b.ReportMetric values. Repeated entries from -count=N stay separate so
// downstream tooling can judge variance.
//
// Usage: go test -bench ... -benchmem | benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line: name, b.N, and metric name -> value.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// scan reads benchmark output from r, echoing every line to echo, and
// returns the parsed results. Non-benchmark lines (test chatter, PASS,
// stray stderr) are skipped; input with no benchmark line at all is an
// error, so a broken pipeline fails loudly instead of producing an
// empty JSON file that silently passes downstream checks.
func scan(r io.Reader, echo io.Writer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if res, ok := parseLine(line); ok {
			results = append(results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	if len(results) == 0 {
		return nil, errors.New("no benchmark result lines in input (did the benchmark run fail?)")
	}
	return results, nil
}

func main() {
	out := flag.String("o", "", "write JSON results to this file (default stdout only)")
	flag.Parse()

	results, err := scan(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
}
