// Command qcdoclint is the driver for the simulator's static-analysis
// suite (internal/analysis, DESIGN.md §11). It loads the packages
// matched by its arguments with the stdlib type checker and applies
// every registered analyzer:
//
//	simtime   — no wall-clock or global math/rand in simulator code
//	maprange  — no order-sensitive effects inside map iterations
//	hotalloc  — //qcdoc:noalloc functions contain no allocating constructs
//	contsafe  — no blocking coroutine APIs on the continuation tier
//	shardsafe — no machine-wide hardware access from per-shard code
//	fleetsafe — no package-level mutable state in sim packages
//	obssafe   — no telemetry registry/histogram writes in HTTP-serving packages
//
// Usage:
//
//	qcdoclint [packages]     # default ./...
//	qcdoclint -list          # print the analyzers and exit
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
// `make lint` runs it over ./... as part of the standard gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/contsafe"
	"qcdoc/internal/analysis/fleetsafe"
	"qcdoc/internal/analysis/hotalloc"
	"qcdoc/internal/analysis/load"
	"qcdoc/internal/analysis/maprange"
	"qcdoc/internal/analysis/obssafe"
	"qcdoc/internal/analysis/shardsafe"
	"qcdoc/internal/analysis/simtime"
)

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	simtime.Analyzer,
	maprange.Analyzer,
	hotalloc.Analyzer,
	contsafe.Analyzer,
	shardsafe.Analyzer,
	fleetsafe.Analyzer,
	obssafe.Analyzer,
}

// listPkg is the subset of `go list -json` the driver needs: where a
// package lives and which files the current build configuration
// actually compiles (so build tags and file suffixes are honored
// without reimplementing them).
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func main() {
	listFlag := flag.Bool("list", false, "print the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qcdoclint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func run(patterns []string) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcdoclint: %v\n", err)
		return 2
	}
	ctx := load.NewContext()
	exit := 0
	type finding struct {
		pos      string
		line     int
		msg      string
		analyzer string
	}
	var findings []finding
	for _, lp := range pkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		p, err := ctx.LoadFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qcdoclint: %s: %v\n", lp.ImportPath, err)
			exit = 2
			continue
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:      pos.String(),
					line:     pos.Line,
					msg:      d.Message,
					analyzer: a.Name,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "qcdoclint: %s on %s: %v\n", a.Name, lp.ImportPath, err)
				exit = 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 && exit == 0 {
		exit = 1
	}
	return exit
}

// goList resolves package patterns through the go tool, so qcdoclint
// sees exactly the files a build would.
func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
