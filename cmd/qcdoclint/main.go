// Command qcdoclint is the driver for the simulator's static-analysis
// suite (internal/analysis, DESIGN.md §11). It loads the packages
// matched by its arguments with the stdlib type checker and applies
// every registered analyzer:
//
//	simtime    — no wall-clock or global math/rand in simulator code
//	detflow    — nondeterminism sources must not reach order-observable
//	             sinks, tracked through the package call graph
//	crossalias — values crossing shard boundaries must be deep-value
//	hotalloc   — //qcdoc:noalloc functions contain no allocating constructs
//	contsafe   — no blocking coroutine APIs on the continuation tier
//	shardsafe  — no machine-wide hardware access from per-shard code
//	fleetsafe  — no package-level mutable state in sim packages
//	obssafe    — no telemetry registry/histogram writes in HTTP-serving packages
//
// Usage:
//
//	qcdoclint [packages]         # default ./...
//	qcdoclint -tests [packages]  # also lint in-package _test.go files
//	qcdoclint -json [packages]   # findings as a JSON array
//	qcdoclint -waivers [packages]# waiver inventory (stale markers fail)
//	qcdoclint -list              # print the analyzers and exit
//
// Exit status: 0 clean, 1 diagnostics reported (including stale
// waivers), 2 operational error. `make lint` runs it over ./... with
// -tests as part of the standard gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"qcdoc/internal/analysis/driver"
)

func main() {
	listFlag := flag.Bool("list", false, "print the analyzers and exit")
	testsFlag := flag.Bool("tests", false, "also lint in-package _test.go files")
	jsonFlag := flag.Bool("json", false, "emit findings (or the waiver inventory) as JSON")
	waiversFlag := flag.Bool("waivers", false, "print the waiver inventory; stale/unknown markers fail")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qcdoclint [-list] [-tests] [-json] [-waivers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listFlag {
		for _, a := range driver.Suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.List(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcdoclint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(driver.Lint(pkgs, driver.Options{
		Tests:   *testsFlag,
		JSON:    *jsonFlag,
		Waivers: *waiversFlag,
	}))
}
