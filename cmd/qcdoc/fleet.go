package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qcdoc/internal/core"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/fleet"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
)

// cmdFleet runs a campaign: a sweep of (lattice × operator × fault
// seed) where every run gets its own fully independent simulated
// machine and the campaign is scheduled over a bounded worker pool —
// the fleet substrate of DESIGN.md §14. With -verify the campaign runs
// twice, serially and concurrently, and every run's outcome digest
// must match bit for bit; a mismatch exits 1. -storm layers the
// compound second-order fault preset (checkpoint corruption, torn
// writes, false death reports, faults during recovery) onto every run;
// runs that exhaust the recovery ladder with a typed error are counted
// as survived-by-design, not failures.
func cmdFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	mshape := fs.String("machine", "2,2", "six-dimensional machine shape per run (comma separated)")
	lats := fs.String("lattices", "4,4,4,4", "global lattices to sweep, semicolon separated")
	ops := fs.String("ops", "wilson", "operators to sweep, comma separated (wilson|clover|asqtad|dwf)")
	mass := fs.Float64("mass", 0.5, "quark mass")
	tol := fs.Float64("tol", 1e-6, "relative tolerance")
	maxIter := fs.Int("maxiter", 500, "iteration limit")
	ls := fs.Int("ls", 8, "fifth dimension (dwf)")
	seed := fs.Uint64("seed", 1, "configuration seed")
	chaos := fs.Bool("chaos", false, "run each spec through the full fault-injection/recovery pipeline")
	storm := fs.Bool("storm", false, "chaos plus the compound second-order preset; typed ladder exhaustion counts as a survived run")
	faultSeeds := fs.String("faultseeds", "", "fault plan seeds to sweep, comma separated (implies -chaos)")
	workers := fs.Int("workers", 8, "campaign worker pool: how many machines run concurrently")
	simWorkers := fs.Int("simworkers", 0, "worker goroutines inside each machine's sharded engine (0 = serial engine per machine)")
	verify := fs.Bool("verify", false, "run the campaign serially too and require identical per-run digests")
	quiet := fs.Bool("quiet", false, "suppress per-run lines; print only the summary")
	fs.Parse(args)

	base := fleet.Spec{
		Machine: geom.MakeShape(parseDims(*mshape)...),
		Mass:    *mass,
		Tol:     *tol,
		MaxIter: *maxIter,
		Ls:      *ls,
		Seed:    *seed,
	}
	if *simWorkers > 0 {
		base.Shards = machine.ShardAuto
		base.Workers = *simWorkers
	}
	var seeds []uint64
	if *faultSeeds != "" {
		*chaos = true
		for _, f := range strings.Split(*faultSeeds, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad fault seed list %q\n", *faultSeeds)
				os.Exit(2)
			}
			seeds = append(seeds, v)
		}
	}
	if *storm {
		*chaos = true
	}
	if *chaos {
		// Mirror `qcdoc chaos` defaults so fleet digests are comparable
		// to standalone runs of the same seeds.
		base.Seed = 4001
		base.Tol = 1e-8
		base.MaxIter = 400
		base.CheckpointEvery = 10
		base.Chaos = true
		base.Faults = faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		}
	}
	if *storm {
		// Mirror `qcdoc chaos -soak` so storm digests line up with
		// standalone soak runs of the same seeds.
		base.MaxAttempts = 6
		base.Faults.ChunkCorrupts += 2
		base.Faults.ChunkTorns++
		base.Faults.WatchdogFalsePositives++
		base.Faults.RecoveryCrashes++
	}

	var lattices []lattice.Shape4
	for _, l := range strings.Split(*lats, ";") {
		lattices = append(lattices, parseShape4(strings.TrimSpace(l)))
	}
	var opKinds []fermion.OpKind
	for _, o := range strings.Split(*ops, ",") {
		opKinds = append(opKinds, opKind(strings.TrimSpace(o)))
	}
	specs := fleet.Sweep(base, lattices, opKinds, seeds)

	cfg := fleet.Config{Workers: *workers, Pool: machine.NewPool()}
	if !*quiet {
		cfg.Log = os.Stdout
	}
	fmt.Printf("fleet: %d runs (machine %v), %d campaign workers\n",
		len(specs), base.Machine, *workers)
	start := time.Now() //qcdoclint:walltime-ok host-side throughput meter
	results := fleet.Run(cfg, specs)
	wall := time.Since(start) //qcdoclint:walltime-ok host-side throughput meter

	// Under -storm, exhausting the recovery ladder with a typed error is
	// a legitimate deterministic outcome — the machine degraded exactly
	// as designed — so only untyped errors count as failures.
	laddered := func(err error) bool {
		return *storm && (errors.Is(err, core.ErrPartitionExhausted) ||
			errors.Is(err, core.ErrCheckpointUnrecoverable))
	}
	failed, exhausted := 0, 0
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if laddered(r.Err) {
			exhausted++
			if !*quiet {
				fmt.Printf("fleet: ladder exhausted %q: %v\n", r.Name, r.Err)
			}
			continue
		}
		failed++
		fmt.Fprintf(os.Stderr, "qcdoc fleet: %s\n", r)
	}
	if exhausted > 0 {
		fmt.Printf("fleet: %d run(s) exhausted the recovery ladder with a typed error\n", exhausted)
	}
	fmt.Printf("fleet: %d/%d runs ok in %.1fs (%.2f runs/sec), campaign digest %#x\n",
		len(results)-failed, len(results), wall.Seconds(),
		float64(len(results))/wall.Seconds(), fleet.Digest(results))
	st := cfg.Pool.Stats()
	fmt.Printf("fleet: pool recycled %d engine storages, %d frame rings; %d shard-plan hits\n",
		st.StorageReused, st.RingsReused, st.PlanHits)
	if failed > 0 {
		os.Exit(1)
	}

	if *verify {
		serial := fleet.Run(fleet.Config{Workers: 1, Pool: machine.NewPool()}, specs)
		bad := 0
		for i := range results {
			if (serial[i].Err != nil && !laddered(serial[i].Err)) || serial[i].Digest != results[i].Digest {
				bad++
				fmt.Fprintf(os.Stderr, "qcdoc fleet: DIGEST MISMATCH %q: concurrent %#x, serial %#x (err %v)\n",
					results[i].Name, results[i].Digest, serial[i].Digest, serial[i].Err)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		fmt.Printf("fleet: verify passed — %d serial re-runs, every digest identical\n", len(serial))
	}
}
