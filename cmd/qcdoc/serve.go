package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"

	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/fleet"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/obs"
	"qcdoc/internal/telemetry"
)

// cmdServe runs an observed solve campaign and serves the observability
// plane over HTTP: Prometheus-text /metrics, a merged Chrome trace on
// /trace, and live campaign progress on /fleet. The campaign runs with
// the full telemetry layer on; its digests are bit-identical to an
// unobserved campaign's — with -selfcheck the command proves that by
// scraping its own endpoints, re-running the campaign unobserved, and
// exiting nonzero on any digest difference.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9100", "listen address")
	mshape := fs.String("machine", "2,2", "six-dimensional machine shape per run (comma separated)")
	lats := fs.String("lattices", "4,4,4,4", "global lattices to sweep, semicolon separated")
	ops := fs.String("ops", "wilson", "operators to sweep, comma separated (wilson|clover|asqtad|dwf)")
	mass := fs.Float64("mass", 0.5, "quark mass")
	tol := fs.Float64("tol", 1e-6, "relative tolerance")
	maxIter := fs.Int("maxiter", 500, "iteration limit")
	seed := fs.Uint64("seed", 1, "configuration seed")
	workers := fs.Int("workers", 4, "campaign worker pool")
	traceN := fs.Int("trace", 4096, "flight-recorder events per shard per run (0 = no /trace)")
	selfcheck := fs.Bool("selfcheck", false, "scrape own endpoints, re-run unobserved, verify digests, then exit")
	quiet := fs.Bool("quiet", false, "suppress per-run lines")
	fs.Parse(args)

	base := fleet.Spec{
		Machine: geom.MakeShape(parseDims(*mshape)...),
		Mass:    *mass,
		Tol:     *tol,
		MaxIter: *maxIter,
		Seed:    *seed,
	}
	var lattices []lattice.Shape4
	for _, l := range strings.Split(*lats, ";") {
		lattices = append(lattices, parseShape4(strings.TrimSpace(l)))
	}
	var opKinds []fermion.OpKind
	for _, o := range strings.Split(*ops, ",") {
		opKinds = append(opKinds, opKind(strings.TrimSpace(o)))
	}
	specs := fleet.Sweep(base, lattices, opKinds, nil)

	srv := &obs.Server{}
	listenAddr := *addr
	if *selfcheck {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	fatal(err)
	go http.Serve(ln, srv.Handler())
	fmt.Printf("qcdoc serve: listening on http://%s (/metrics /trace /fleet), %d runs\n",
		ln.Addr(), len(specs))

	// Live progress: each completed run republishes the campaign status,
	// so /fleet and the fleet counters on /metrics move while the
	// campaign runs. The tracker mirrors results because fleet.Run's
	// result slice is not ours to read until it returns.
	prog := newProgress(len(specs), specs, srv)
	cfg := fleet.Config{
		Workers:     *workers,
		Pool:        machine.NewPool(),
		Observe:     true,
		TraceEvents: *traceN,
		OnResult:    prog.record,
	}
	if !*quiet {
		cfg.Log = os.Stdout
	}
	results := fleet.Run(cfg, specs)
	publishFinal(srv, specs, results)
	fmt.Printf("qcdoc serve: campaign done, digest %#x\n", fleet.Digest(results))

	if *selfcheck {
		os.Exit(runSelfcheck(ln.Addr().String(), specs, results, *workers))
	}
	select {} // serve forever
}

// progress tracks run completions for the live /fleet view. OnResult
// fires from concurrent campaign workers, so every access goes through
// the mutex.
type progress struct {
	mu    sync.Mutex
	srv   *obs.Server
	specs []fleet.Spec
	done  []fleet.Result
	seen  []bool
}

func newProgress(n int, specs []fleet.Spec, srv *obs.Server) *progress {
	p := &progress{srv: srv, specs: specs, done: make([]fleet.Result, n), seen: make([]bool, n)}
	srv.PublishFleet(p.status())
	return p
}

// record is the fleet.Config.OnResult hook.
func (p *progress) record(i int, r fleet.Result) {
	p.mu.Lock()
	p.done[i] = r
	p.seen[i] = true
	p.mu.Unlock()
	p.srv.PublishFleet(p.status())
}

func (p *progress) status() obs.FleetStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := obs.FleetStatus{Total: len(p.specs)}
	var finished []fleet.Result
	for i := range p.specs {
		run := obs.FleetRun{Name: p.specs[i].Name}
		if p.seen[i] {
			r := p.done[i]
			st.Done++
			run.Done = true
			run.Converged = r.Converged
			run.Iterations = r.Iterations
			run.Attempts = r.Attempts
			run.Digest = obs.DigestString(r.Digest)
			if r.Err != nil {
				st.Failed++
				run.Err = r.Err.Error()
			}
			finished = append(finished, r)
		}
		st.Runs = append(st.Runs, run)
	}
	st.Hists = fleet.Aggregate(finished)
	return st
}

// publishFinal installs the completed campaign's full observability:
// final /fleet status with the campaign digest, the last run's full
// telemetry snapshot on /metrics, and the merged Chrome trace.
func publishFinal(srv *obs.Server, specs []fleet.Spec, results []fleet.Result) {
	st := obs.FleetStatus{Total: len(specs)}
	for i, r := range results {
		run := obs.FleetRun{
			Name: specs[i].Name, Done: true, Converged: r.Converged,
			Iterations: r.Iterations, Attempts: r.Attempts,
			Digest: obs.DigestString(r.Digest),
		}
		st.Done++
		if r.Err != nil {
			st.Failed++
			run.Err = r.Err.Error()
		}
		st.Runs = append(st.Runs, run)
	}
	st.Digest = obs.DigestString(fleet.Digest(results))
	st.Hists = fleet.Aggregate(results)
	srv.PublishFleet(st)

	for i := len(results) - 1; i >= 0; i-- {
		if results[i].Err == nil && results[i].Snap.Counters != nil {
			snap := results[i].Snap
			if snap.Histograms == nil {
				snap.Histograms = map[string]telemetry.HistogramSnapshot{}
			}
			srv.PublishMetrics(results[i].SimTime, snap)
			break
		}
	}

	var recs []*event.Recorder
	for _, r := range results {
		if r.Trace != nil {
			recs = append(recs, r.Trace)
		}
	}
	if len(recs) > 0 {
		var sb strings.Builder
		if err := event.WriteChromeTraceMerged(&sb, recs, 0); err == nil {
			srv.PublishTrace([]byte(sb.String()))
		}
	}
}

// runSelfcheck is the `make obs` CI gate: scrape our own endpoints,
// then re-run the identical campaign with observability fully off and
// require bit-identical digests — the zero-perturbation contract,
// proven end to end through the HTTP surface.
func runSelfcheck(addr string, specs []fleet.Spec, observed []fleet.Result, workers int) int {
	scrape := func(path string, want string) bool {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qcdoc serve: selfcheck GET %s: %v\n", path, err)
			return false
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			fmt.Fprintf(os.Stderr, "qcdoc serve: selfcheck %s: status %d, want %q in body\n",
				path, resp.StatusCode, want)
			return false
		}
		return true
	}
	ok := scrape("/metrics", "qcdoc_fleet_runs_total") &&
		scrape("/metrics", "qcdoc_machine_gsum_rtt_ps") &&
		scrape("/fleet", `"digest"`) &&
		scrape("/trace", `"traceEvents"`)
	if !ok {
		return 1
	}
	fmt.Println("qcdoc serve: selfcheck scrape ok (/metrics /fleet /trace)")

	dark := fleet.Run(fleet.Config{Workers: workers, Pool: machine.NewPool()}, specs)
	bad := 0
	for i := range observed {
		if dark[i].Err != nil || dark[i].Digest != observed[i].Digest {
			bad++
			fmt.Fprintf(os.Stderr,
				"qcdoc serve: DIGEST PERTURBED by observability %q: observed %#x, dark %#x (err %v)\n",
				observed[i].Name, observed[i].Digest, dark[i].Digest, dark[i].Err)
		}
	}
	if bad > 0 {
		return 1
	}
	fmt.Printf("qcdoc serve: selfcheck passed — %d runs bit-identical with observability on and off\n",
		len(observed))
	return 0
}
