// Command qcdoc builds and drives simulated QCDOC machines.
//
// Usage:
//
//	qcdoc info -nodes 1024 -clock 500
//	    packaging, power, cost and bandwidth summary
//
//	qcdoc solve -machine 2,2,2,2 -lattice 8,8,8,8 -op wilson -mass 0.5
//	    boot a machine, run a distributed CG solve, report metrics
//
//	qcdoc scaling -lattice 32,32,32,64
//	    hard-scaling table for a fixed global lattice
//
//	qcdoc estimate -op clover -grid 8,8,8,16 -local 4,4,4,4
//	    analytic solver estimate for a paper-scale machine
//
//	qcdoc chaos -faultseed 16 -repeat 2
//	    run a solve under deterministic fault injection: node death,
//	    watchdog detection, checkpoint restore, re-convergence
//
//	qcdoc chaos -soak -faultseed 1 -verify-workers 8 -require-fallback -require-shrink
//	    compound second-order campaign: checkpoint corruption, torn
//	    writes, false death reports and faults during recovery, driven
//	    through the recovery ladder with digest-checked determinism
//
//	qcdoc fleet -machine 2,2 -lattices "4,4,4,4;4,4,4,8" -ops wilson,clover -workers 8
//	    run a campaign: many independent machines in one process,
//	    sweeping (lattice × operator × fault seed) over a worker pool
//
//	qcdoc serve -addr 127.0.0.1:9100 -lattices "4,4,4,4;4,4,4,8"
//	    run an observed campaign and serve /metrics (Prometheus text),
//	    /trace (Chrome trace) and /fleet (live progress) over HTTP
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qcdoc/internal/core"
	"qcdoc/internal/cost"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "info":
		cmdInfo(os.Args[2:])
	case "solve":
		cmdSolve(os.Args[2:])
	case "scaling":
		cmdScaling(os.Args[2:])
	case "estimate":
		cmdEstimate(os.Args[2:])
	case "chaos":
		cmdChaos(os.Args[2:])
	case "fleet":
		cmdFleet(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qcdoc {info|solve|scaling|estimate|chaos|fleet|serve} [flags]")
	os.Exit(2)
}

func parseDims(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad dimension list %q\n", s)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseShape4(s string) lattice.Shape4 {
	d := parseDims(s)
	if len(d) != 4 {
		fmt.Fprintf(os.Stderr, "need 4 extents, got %q\n", s)
		os.Exit(2)
	}
	return lattice.Shape4{d[0], d[1], d[2], d[3]}
}

func opKind(s string) fermion.OpKind {
	switch s {
	case "wilson":
		return fermion.WilsonKind
	case "clover":
		return fermion.CloverKind
	case "asqtad":
		return fermion.AsqtadKind
	case "dwf":
		return fermion.DWFKind
	default:
		fmt.Fprintf(os.Stderr, "unknown operator %q (wilson|clover|asqtad|dwf)\n", s)
		os.Exit(2)
		return 0
	}
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	nodes := fs.Int("nodes", 1024, "machine size in nodes")
	clock := fs.Int64("clock", 500, "clock in MHz")
	fs.Parse(args)
	hz := event.Hz(*clock) * event.MHz
	p := machine.PackagingFor(*nodes, hz)
	fmt.Println(p)
	fmt.Printf("link payload bandwidth: %.1f MB/s per direction, %.2f GB/s aggregate\n",
		perf.LinkPayloadBandwidth(hz)/1e6, perf.AggregateLinkBandwidth(hz)/1e9)
	fmt.Printf("nearest-neighbour memory-to-memory latency: %v\n", perf.TransferTime(hz, 1))
	if *nodes == 4096 {
		fmt.Println("cost breakdown (the paper's 4096-node machine):")
		fmt.Print(cost.FormatTable())
		for _, pt := range cost.Paper4096Points() {
			fmt.Printf("  $%.2f per sustained Mflops at %d MHz (paper: $%.2f)\n",
				pt.Dollars, int64(pt.Clock)/1_000_000, pt.PaperSays)
		}
	}
}

func cmdSolve(args []string) {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	mshape := fs.String("machine", "2,2,2,2", "six-dimensional machine shape (comma separated)")
	lat := fs.String("lattice", "8,8,8,8", "global lattice")
	op := fs.String("op", "wilson", "operator: wilson|clover|asqtad|dwf")
	mass := fs.Float64("mass", 0.5, "quark mass")
	tol := fs.Float64("tol", 1e-6, "relative tolerance")
	maxIter := fs.Int("maxiter", 500, "iteration limit")
	ls := fs.Int("ls", 8, "fifth dimension (dwf)")
	seed := fs.Uint64("seed", 1, "configuration seed")
	telemetryOut := fs.String("telemetry", "", "write a machine-wide telemetry snapshot (JSON) to this file after the run")
	traceN := fs.Int("trace", 0, "attach a flight recorder holding the last N events (0 = off)")
	chromeOut := fs.String("chrometrace", "", "write the flight-recorder tail as Chrome trace-event JSON to this file")
	workers := fs.Int("workers", 0, "simulation worker goroutines for the sharded engine (0 = unsharded serial engine)")
	fs.Parse(args)

	shape := geom.MakeShape(parseDims(*mshape)...)
	global := parseShape4(*lat)
	mcfg := machine.DefaultConfig(shape)
	if *workers > 0 {
		mcfg.Shards = machine.ShardAuto
		mcfg.Workers = *workers
	}
	sess, err := core.NewSessionConfig(mcfg, global)
	fatal(err)
	defer sess.Close()
	if *telemetryOut != "" {
		sess.M.EnableTelemetry()
	}
	var rec *event.Recorder
	if *traceN > 0 || *chromeOut != "" {
		rec = event.NewRecorder(*traceN)
		sess.M.Eng.SetRecorder(rec)
		// On a panic anywhere in the run, dump the last events: the
		// flight recorder's reason for existing.
		defer func() {
			if r := recover(); r != nil {
				rec.Dump(os.Stderr, 64)
				panic(r)
			}
		}()
	}
	fmt.Printf("machine %v (%d nodes) folded to grid %v, local volume %v\n",
		shape, sess.M.NumNodes(), sess.Lay.Dec.Grid, sess.Lay.Dec.Local)

	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(*seed)
	var met core.SolveMetrics
	switch opKind(*op) {
	case fermion.WilsonKind:
		b := lattice.NewFermionField(global)
		b.Gaussian(*seed + 1)
		_, met, err = sess.SolveWilson(gauge, b, *mass, fermion.Double, *tol, *maxIter)
	case fermion.CloverKind:
		ref := fermion.NewClover(gauge, *mass, 1.0)
		b := lattice.NewFermionField(global)
		b.Gaussian(*seed + 1)
		_, met, err = sess.SolveClover(ref, b, fermion.Double, *tol, *maxIter)
	case fermion.AsqtadKind:
		ref := fermion.NewASQTAD(gauge, *mass)
		b := lattice.NewColorField(global)
		b.Gaussian(*seed + 1)
		_, met, err = sess.SolveASQTAD(ref, b, fermion.Double, *tol, *maxIter)
	case fermion.DWFKind:
		b := fermion.NewField5(global, *ls)
		b.Gaussian(*seed + 1)
		_, met, err = sess.SolveDWF(gauge, b, 1.8, *mass, *ls, fermion.Double, *tol, *maxIter)
	}
	fatal(err)
	fmt.Printf("converged in %d iterations (residual %.2g)\n", met.Iterations, met.RelResidual)
	fmt.Printf("simulated time %v, %.1f Mflops/node sustained = %.1f%% of peak\n",
		met.SimTime, met.SustainedPerNode/1e6, 100*met.Efficiency)
	fmt.Printf("network: %d data words moved, %d resends\n", met.WordsSent, met.Resends)
	if _, err := sess.M.VerifyChecksums(); err != nil {
		fatal(err)
	}
	fmt.Println("end-of-run link checksum audit: passed")
	if *telemetryOut != "" {
		fatal(writeTelemetry(*telemetryOut, sess.M, rec))
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		fatal(err)
		err = rec.WriteChromeTrace(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
		fmt.Printf("chrome trace written to %s (open in chrome://tracing)\n", *chromeOut)
	}
}

// traceJSON is one flight-recorder record in the telemetry export.
type traceJSON struct {
	At    event.Time `json:"at"`
	Seq   uint64     `json:"seq"`
	Kind  string     `json:"kind"`
	Actor string     `json:"actor"`
	Arg   uint64     `json:"arg"`
}

// writeTelemetry exports the machine-wide snapshot — per-link error
// counters, registry counters and gauges, packaging — plus the flight
// recorder's tail when one is attached.
func writeTelemetry(path string, m *machine.Machine, rec *event.Recorder) error {
	out := struct {
		machine.Telemetry
		Trace []traceJSON `json:"trace,omitempty"`
	}{Telemetry: m.Telemetry()}
	if rec != nil {
		for _, r := range rec.Tail(0) {
			out.Trace = append(out.Trace, traceJSON{
				At: r.At, Seq: r.Seq, Kind: r.Kind.String(), Actor: r.Actor(), Arg: r.Arg,
			})
		}
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("telemetry snapshot written to %s\n", path)
	return nil
}

func cmdScaling(args []string) {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	lat := fs.String("lattice", "32,32,32,64", "global lattice")
	op := fs.String("op", "wilson", "operator")
	fs.Parse(args)
	global := parseShape4(*lat)
	grids := []lattice.Shape4{
		{2, 2, 2, 4}, {4, 4, 4, 4}, {4, 4, 4, 16}, {8, 8, 8, 8}, {8, 8, 8, 16},
	}
	pts, err := perf.HardScaling(opKind(*op), global, grids, 500*event.MHz)
	fatal(err)
	fmt.Printf("%8s  %-12s  %-6s  %10s  %10s  %12s\n",
		"nodes", "local", "level", "efficiency", "comm frac", "machine Gf")
	for _, p := range pts {
		fmt.Printf("%8d  %-12v  %-6v  %9.1f%%  %9.1f%%  %12.1f\n",
			p.Nodes, p.Local, p.Estimate.Level, 100*p.Estimate.Efficiency,
			100*p.CommFrac, p.Estimate.MachineGflop)
	}
}

func cmdEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	op := fs.String("op", "wilson", "operator")
	grid := fs.String("grid", "8,8,8,16", "4-D process grid")
	local := fs.String("local", "4,4,4,4", "local volume")
	clock := fs.Int64("clock", 500, "clock MHz")
	fs.Parse(args)
	cfg := perf.DefaultConfig(opKind(*op), parseShape4(*grid), event.Hz(*clock)*event.MHz)
	cfg.Local = parseShape4(*local)
	est := perf.CGIteration(cfg)
	fmt.Printf("%d nodes, local %v (%v resident)\n", est.Nodes, cfg.Local, est.Level)
	fmt.Printf("per CG iteration: compute %v, halo %v (hidden: %v), reductions %v\n",
		est.ComputeTime, est.CommRawTime, est.CommRawTime-est.CommTime, est.GsumTime)
	fmt.Printf("sustained %.1f Mflops/node = %.1f%% of peak; machine %.1f Gflops\n",
		est.Sustained/1e6, 100*est.Efficiency, est.MachineGflop)
}

// cmdChaos runs a distributed Wilson solve under a deterministic fault
// plan: inject, detect, isolate, restore, converge. With -repeat N the
// whole run executes N times and the outcome digests must match bit for
// bit — same -faultseed, same recovery timeline, always. -soak adds the
// compound second-order preset (checkpoint corruption, a spurious death
// report, a second death during recovery) and attempt headroom for the
// recovery ladder; -verify-workers re-runs on a sharded engine and
// requires the identical digest; -expect-error gates scenarios that
// must exhaust the ladder with a typed error.
func cmdChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	mshape := fs.String("machine", "2,2,2", "six-dimensional machine shape (comma separated)")
	lat := fs.String("lattice", "4,4,4,4", "global lattice")
	seed := fs.Uint64("seed", 4001, "configuration seed")
	faultSeed := fs.Uint64("faultseed", 16, "fault plan seed (same seed = same faults, same timeline)")
	mass := fs.Float64("mass", 0.5, "quark mass")
	tol := fs.Float64("tol", 1e-8, "relative tolerance")
	maxIter := fs.Int("maxiter", 400, "iteration limit per attempt")
	ckptEvery := fs.Int("ckpt-every", 10, "checkpoint the solver state every N CG iterations")
	crashes := fs.Int("crashes", 1, "node crashes to draw")
	hangs := fs.Int("hangs", 0, "node hangs to draw")
	bursts := fs.Int("bursts", 1, "link error bursts to draw")
	drops := fs.Int("drops", 2, "management packets to drop")
	dups := fs.Int("dups", 1, "management packets to duplicate")
	soak := fs.Bool("soak", false, "compound preset: +2 chunk corruptions, +1 torn write, +1 false death report, +1 recovery crash, 6 attempts")
	chunkCorrupts := fs.Int("chunk-corrupts", 0, "checkpoint chunk bit-flips to draw (host storage plane)")
	chunkTorns := fs.Int("chunk-torns", 0, "torn checkpoint writes to draw (host storage plane)")
	nfsStalls := fs.Int("nfs-stalls", 0, "NFS stall windows to draw (checkpoint writes delayed)")
	nfsErrors := fs.Int("nfs-errors", 0, "NFS error windows to draw (checkpoint writes dropped)")
	falsePositives := fs.Int("false-positives", 0, "spurious death reports to draw (watchdog must probe)")
	recoveryCrashes := fs.Int("recovery-crashes", 0, "second deaths to draw, scheduled relative to the recovery window")
	maxAttempts := fs.Int("max-attempts", 0, "restart budget (0 = default; -soak raises it to 6)")
	generations := fs.Int("generations", 0, "checkpoint generations retained on the host (0 = default 3)")
	repeat := fs.Int("repeat", 1, "run N times and require identical digests")
	quiet := fs.Bool("quiet", false, "suppress the per-event narrative")
	workers := fs.Int("workers", 0, "simulation worker goroutines for the sharded engine (0 = unsharded serial engine)")
	verifyWorkers := fs.Int("verify-workers", 0, "after the serial runs, re-run with N workers and require the identical digest")
	requireFallback := fs.Bool("require-fallback", false, "fail unless the run climbed a generation-fallback rung")
	requireShrink := fs.Bool("require-shrink", false, "fail unless the run climbed a repartition rung")
	expectError := fs.String("expect-error", "", "require the run to exhaust the ladder with a typed error (partition|checkpoint)")
	fs.Parse(args)

	cfg := core.ChaosConfig{
		Shape:           geom.MakeShape(parseDims(*mshape)...),
		Global:          parseShape4(*lat),
		Seed:            *seed,
		FaultSeed:       *faultSeed,
		Mass:            *mass,
		Tol:             *tol,
		MaxIter:         *maxIter,
		CheckpointEvery: *ckptEvery,
		MaxAttempts:     *maxAttempts,
		Recovery:        core.RecoveryConfig{Generations: *generations},
		Spec: faultplan.Spec{
			From:                   2 * event.Millisecond,
			To:                     10 * event.Millisecond,
			NodeCrashes:            *crashes,
			NodeHangs:              *hangs,
			LinkBursts:             *bursts,
			NetDrops:               *drops,
			NetDups:                *dups,
			ChunkCorrupts:          *chunkCorrupts,
			ChunkTorns:             *chunkTorns,
			NFSStalls:              *nfsStalls,
			NFSErrors:              *nfsErrors,
			WatchdogFalsePositives: *falsePositives,
			RecoveryCrashes:        *recoveryCrashes,
		},
	}
	if *soak {
		// Mirror core's soak scenario (TestChaosSoakCompound) so CLI
		// digests are comparable to the test's.
		if cfg.MaxAttempts == 0 {
			cfg.MaxAttempts = 6
		}
		cfg.Spec.ChunkCorrupts += 2
		cfg.Spec.ChunkTorns++
		cfg.Spec.WatchdogFalsePositives++
		cfg.Spec.RecoveryCrashes++
	}
	if *workers > 0 {
		cfg.Shards = machine.ShardAuto
		cfg.Workers = *workers
	}
	if !*quiet {
		cfg.Log = os.Stdout
	}
	runOnce := func(cfg core.ChaosConfig) *core.ChaosOutcome {
		out, err := core.RunChaosWilson(cfg)
		switch *expectError {
		case "":
			fatal(err)
		case "partition":
			if !errors.Is(err, core.ErrPartitionExhausted) {
				fatal(fmt.Errorf("expected ErrPartitionExhausted, got: %w", err))
			}
			fmt.Printf("ladder exhausted as required: %v\n", err)
		case "checkpoint":
			if !errors.Is(err, core.ErrCheckpointUnrecoverable) {
				fatal(fmt.Errorf("expected ErrCheckpointUnrecoverable, got: %w", err))
			}
			fmt.Printf("ladder exhausted as required: %v\n", err)
		default:
			fmt.Fprintf(os.Stderr, "qcdoc chaos: unknown -expect-error %q (want partition|checkpoint)\n", *expectError)
			os.Exit(2)
		}
		for _, a := range out.Attempts {
			fmt.Printf("attempt: %s\n", a)
		}
		for _, r := range out.Rungs {
			fmt.Printf("ladder:  %s\n", r)
		}
		if out.Converged {
			fmt.Printf("residual %.2g, solution CRC %#x\n", out.RelResidual, out.SolutionCRC)
		}
		fmt.Printf("fault plan digest %#x, outcome digest %#x\n", out.PlanDigest, out.Digest)
		return out
	}
	var digests []uint64
	var last *core.ChaosOutcome
	for i := 0; i < *repeat; i++ {
		if *repeat > 1 {
			fmt.Printf("--- run %d/%d ---\n", i+1, *repeat)
		}
		last = runOnce(cfg)
		digests = append(digests, last.Digest)
	}
	if *verifyWorkers > 0 {
		fmt.Printf("--- verify: %d workers, sharded engine ---\n", *verifyWorkers)
		wcfg := cfg
		wcfg.Shards = machine.ShardAuto
		wcfg.Workers = *verifyWorkers
		last = runOnce(wcfg)
		digests = append(digests, last.Digest)
	}
	for _, dg := range digests[1:] {
		if dg != digests[0] {
			fmt.Fprintf(os.Stderr, "qcdoc chaos: DIGEST MISMATCH across runs: %#x vs %#x\n", digests[0], dg)
			os.Exit(1)
		}
	}
	if len(digests) > 1 {
		fmt.Printf("%d runs, identical outcome digest %#x: recovery timeline is deterministic\n",
			len(digests), digests[0])
	}
	if *requireFallback && !last.HasRung(core.RungGenerationFallback) {
		fmt.Fprintln(os.Stderr, "qcdoc chaos: no generation-fallback rung climbed (required)")
		os.Exit(1)
	}
	if *requireShrink && !last.HasRung(core.RungRepartition) {
		fmt.Fprintln(os.Stderr, "qcdoc chaos: no repartition rung climbed (required)")
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qcdoc:", err)
		os.Exit(1)
	}
}
